"""Fig 9 claims: RPC tail latency colocated with iperf traffic."""

from ..expect import FigureSpec, within_band, wins

_SIZES = (128, 4096, 32768)

SPEC = FigureSpec(
    figure="fig9",
    title="RPC tail latency under colocation",
    expectations=(
        within_band(
            "n",
            "off",
            lo=20,
            at=_SIZES,
            claim="enough RPC samples complete under off",
            paper="-",
        ),
        within_band(
            "n",
            "fns",
            lo=20,
            at=_SIZES,
            claim="enough RPC samples complete under F&S",
            paper="-",
        ),
        within_band(
            "n",
            "strict",
            lo=1,
            at=_SIZES,
            claim="strict RPCs complete, if slowly",
            paper="-",
        ),
        within_band(
            "p50",
            "fns",
            of="off",
            hi=2.0,
            at=_SIZES,
            claim="F&S median latency within a small factor of off",
            paper="<= 1.17x of off",
        ),
        within_band(
            "p99.9",
            "fns",
            of="off",
            hi=3.0,
            slack=200.0,
            at=_SIZES,
            claim="F&S P99.9 within a small factor of off",
            paper="<= 1.42x at P99.99",
        ),
        wins(
            "strict",
            "off",
            "p99.9",
            by=10.0,
            at=_SIZES,
            agg="max",
            claim="strict tail inflates by orders of magnitude",
            paper="P99 queueing, P99.9+ at RTO scale",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "p99.9": {
        "off": [(128, 67.0), (32768, 120.0)],
        "strict": [(128, 4000.0), (32768, 4000.0)],
        "fns": [(128, 78.0), (32768, 140.0)],
    },
}

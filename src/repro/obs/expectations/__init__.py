"""Per-figure expectation specs: the paper's claims, machine-readable.

One module per reproduced figure.  Each exports a single ``SPEC``
(:class:`repro.obs.expect.FigureSpec`) listing that figure's claims in
the expectation vocabulary.  ``SPECS`` maps CLI figure keys to specs —
the benchmark suite, ``repro reproduce`` and the generated ``REPORT.md``
all read from here, so they cannot disagree.

Paper-vs-ours context for every claim lives in ``EXPERIMENTS.md``;
deliberate deviations are encoded as the (looser) bounds asserted here
and documented there.

Spec modules may additionally export ``PAPER_CURVES`` — approximate
digitizations of the paper's plotted series, keyed by table column then
mode.  :func:`reference_curves` is the accessor ``repro publish`` uses
to overlay them as dashed context lines; they are presentation only and
never gated on.
"""

from . import (
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig11c,
    fig12,
    model,
)
from ..expect.engine import FigureSpec

__all__ = ["SPECS"]

_MODULES = (
    fig2,
    fig3,
    model,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig11c,
    fig12,
)

SPECS: dict[str, FigureSpec] = {
    module.SPEC.figure: module.SPEC for module in _MODULES
}

_BY_KEY = {module.SPEC.figure: module for module in _MODULES}


def reference_curves(
    figure: str,
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """The paper's reference curves for one figure, or ``{}``.

    Shape: ``{column: {mode: [(x, y), ...]}}`` in the figure's own
    table units.  Figures without digitized curves (e.g. ``model``,
    whose paper prediction is already a table column) return ``{}``.
    """
    module = _BY_KEY.get(figure)
    if module is None:
        return {}
    curves = getattr(module, "PAPER_CURVES", {})
    return {
        column: {mode: list(points) for mode, points in by_mode.items()}
        for column, by_mode in curves.items()
    }

"""Per-figure expectation specs: the paper's claims, machine-readable.

One module per reproduced figure.  Each exports a single ``SPEC``
(:class:`repro.obs.expect.FigureSpec`) listing that figure's claims in
the expectation vocabulary.  ``SPECS`` maps CLI figure keys to specs —
the benchmark suite, ``repro reproduce`` and the generated ``REPORT.md``
all read from here, so they cannot disagree.

Paper-vs-ours context for every claim lives in ``EXPERIMENTS.md``;
deliberate deviations are encoded as the (looser) bounds asserted here
and documented there.
"""

from . import (
    fig2,
    fig3,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig11c,
    fig12,
    model,
)
from ..expect.engine import FigureSpec

__all__ = ["SPECS"]

_MODULES = (
    fig2,
    fig3,
    model,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig11c,
    fig12,
)

SPECS: dict[str, FigureSpec] = {
    module.SPEC.figure: module.SPEC for module in _MODULES
}

"""Fig 2 claims: Linux strict vs IOMMU off, varying flows (iperf)."""

from ..expect import (
    FigureSpec,
    equal,
    grows_with,
    largest_class,
    within_band,
    wins,
)

SPEC = FigureSpec(
    figure="fig2",
    title="Linux strict vs IOMMU off, varying flows",
    expectations=(
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=0.92,
            at=(5, 40),
            claim="strict loses clear throughput vs off",
            paper="20-65% degradation, worse with flows",
        ),
        grows_with(
            "drop%",
            "strict",
            claim="strict drop rate grows with flows",
            paper="grows to ~4% at 40 flows",
        ),
        within_band(
            "iotlb/pg",
            "strict",
            lo=1.0,
            claim="at least the compulsory IOTLB miss per page",
            paper="1.30 - 2.20 misses/page",
        ),
        grows_with(
            "iotlb/pg",
            "strict",
            claim="strict IOTLB misses/page grow with flows",
            paper="1.30 -> 2.20",
        ),
        equal(
            "m1/pg",
            "m2/pg",
            mode="strict",
            tol_abs=0.005,
            tol_rel=0.25,
            claim="m1 = m2 (both count the same invalidations)",
            paper="0.05 -> 0.63, equal",
        ),
        within_band(
            "m1/pg",
            "strict",
            lo=0.001,
            at=(5, 40),
            claim="PTcache-L1 misses are nonzero under strict",
            paper="0.05 -> 0.63",
        ),
        largest_class(
            "m3/pg",
            among=("m1/pg", "m2/pg", "m3/pg"),
            mode="strict",
            claim="m3 is the largest PTcache miss class",
            paper="0.36 -> 0.90 (invalidation + locality)",
        ),
        grows_with(
            "m3/pg",
            "strict",
            claim="strict PTcache-L3 misses grow with flows",
            paper="0.36 -> 0.90",
        ),
        grows_with(
            "tx/pg",
            "strict",
            claim="Tx packets per Rx page grow with flows (ACK feedback)",
            paper="grows with flows",
        ),
        grows_with(
            "loc_p95",
            "strict",
            factor=0.8,
            claim="strict allocation locality stays degraded with flows",
            paper="degrades with flows",
        ),
        wins(
            "strict",
            "off",
            "loc_p95",
            claim="strict reuse distance far above off's",
            paper="p95 distance >> 0",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(5, 99.0), (10, 97.0), (20, 95.0), (40, 92.0)],
        "strict": [(5, 80.0), (10, 68.0), (20, 52.0), (40, 35.0)],
    },
    "iotlb/pg": {
        "strict": [(5, 1.30), (10, 1.60), (20, 1.90), (40, 2.20)],
    },
    "m3/pg": {
        "strict": [(5, 0.36), (10, 0.55), (20, 0.72), (40, 0.90)],
    },
}

"""Section 2.2 model claims: T = p / (l0 + M*lm) closes the loop."""

from ..expect import FigureSpec, within_band

SPEC = FigureSpec(
    figure="model",
    title="Section 2.2 analytic throughput model",
    expectations=(
        within_band(
            "paper_err%",
            hi=20.0,
            claim="paper constants predict measured throughput within 20%",
            paper="model within ~10% of measured",
        ),
        within_band(
            derived=lambda r: min(r.raw["l0_ns"], r.raw["lm_ns"]),
            label="min(refit l0, lm) ns",
            lo=0.0,
            claim="refit latencies are non-negative",
            paper="l0 = 65 ns, lm = 197 ns",
        ),
        within_band(
            derived=lambda r: r.raw["l0_ns"] + 1.7 * r.raw["lm_ns"],
            label="l0 + 1.7*lm (ns)",
            lo=250.0,
            hi=600.0,
            claim="combined per-packet latency at M=1.7 in 250-600 ns",
            paper="65 + 1.7*197 = 400 ns",
        ),
    ),
)

"""Fig 11c claims: SPDK remote read throughput."""

from ..expect import FigureSpec, declines_with, within_band, wins

SPEC = FigureSpec(
    figure="fig11c",
    title="SPDK remote read throughput",
    expectations=(
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=0.95,
            at=(32768, 65536),
            claim="visible strict degradation at small/medium blocks",
            paper="caps ~60 Gbps (~40% loss)",
        ),
        wins(
            "fns",
            "strict",
            "gbps",
            at=(32768, 65536),
            claim="F&S above strict at small/medium blocks",
            paper="F&S = off",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.95,
            at=(32768, 65536),
            claim="F&S matches off at small/medium blocks",
            paper="equal except small 32 KB gap",
        ),
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=1.02,
            at=(262144,),
            claim="no inversion at large blocks",
            paper="strict below off throughout",
        ),
        declines_with(
            "iotlb/pg",
            "strict",
            factor=1.05,
            claim="strict IOTLB misses higher at small blocks",
            paper="~1.5x more at 32 KB vs 256 KB",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(32768, 91.0), (65536, 92.0), (262144, 93.0)],
        "strict": [(32768, 58.0), (65536, 60.0), (262144, 62.0)],
        "fns": [(32768, 88.0), (65536, 92.0), (262144, 93.0)],
    },
    "iotlb/pg": {
        "strict": [(32768, 1.50), (262144, 1.00)],
    },
}

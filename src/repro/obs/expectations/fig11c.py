"""Fig 11c claims: SPDK remote read throughput."""

from ..expect import FigureSpec, declines_with, within_band, wins

SPEC = FigureSpec(
    figure="fig11c",
    title="SPDK remote read throughput",
    expectations=(
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=0.95,
            at=(32768, 65536),
            claim="visible strict degradation at small/medium blocks",
            paper="caps ~60 Gbps (~40% loss)",
        ),
        wins(
            "fns",
            "strict",
            "gbps",
            at=(32768, 65536),
            claim="F&S above strict at small/medium blocks",
            paper="F&S = off",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.95,
            at=(32768, 65536),
            claim="F&S matches off at small/medium blocks",
            paper="equal except small 32 KB gap",
        ),
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=1.02,
            at=(262144,),
            claim="no inversion at large blocks",
            paper="strict below off throughout",
        ),
        declines_with(
            "iotlb/pg",
            "strict",
            factor=1.05,
            claim="strict IOTLB misses higher at small blocks",
            paper="~1.5x more at 32 KB vs 256 KB",
        ),
    ),
)

"""Fig 7 claims: F&S eliminates the protection overheads (flows)."""

from ..expect import FigureSpec, is_zero, within_band

SPEC = FigureSpec(
    figure="fig7",
    title="F&S vs strict vs off, varying flows",
    expectations=(
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.95,
            claim="F&S throughput matches IOMMU-off",
            paper="equal at all flow counts",
        ),
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=0.92,
            claim="strict stays clearly below off",
            paper="20-65% degradation",
        ),
        within_band(
            "drop%",
            "fns",
            of="off",
            hi=1.0,
            slack=0.05,
            claim="F&S adds no protection-induced drops",
            paper="none beyond off",
        ),
        is_zero(
            "m1/pg",
            "fns",
            claim="F&S PTcache-L1 misses are exactly zero",
            paper="0",
        ),
        is_zero(
            "m2/pg",
            "fns",
            claim="F&S PTcache-L2 misses are exactly zero",
            paper="0",
        ),
        within_band(
            "m3/pg",
            "fns",
            of="strict",
            hi=0.1,
            hi_min=0.054,
            claim="F&S PTcache-L3 misses >=10x below strict",
            paper="<= 0.045/page, >10-20x fewer",
        ),
        within_band(
            "iotlb/pg",
            "fns",
            lo=1.0,
            claim="strict safety keeps the compulsory IOTLB miss",
            paper=">= 1/page, ~2x below strict at 40 flows",
        ),
        within_band(
            "loc_p95",
            "fns",
            hi=4.0,
            claim="F&S locality near-perfect (p95 reuse distance ~0)",
            paper="flat, spikes only at descriptor boundaries",
        ),
        # The registry counts from construction, so the first walk of
        # each phase pays compulsory cold-cache misses the per-page
        # steady-state table rounds away; allow only that handful.
        is_zero(
            metric="iommu.ptcache_m1",
            phase_contains=" fns ",
            tol=8.0,
            claim="registry: F&S L1 misses are cold-start-only",
            paper="0 in steady state",
        ),
        is_zero(
            metric="iommu.ptcache_m2",
            phase_contains=" fns ",
            tol=8.0,
            claim="registry: F&S L2 misses are cold-start-only",
            paper="0 in steady state",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(5, 99.0), (10, 97.0), (20, 95.0), (40, 92.0)],
        "strict": [(5, 80.0), (10, 68.0), (20, 52.0), (40, 35.0)],
        "fns": [(5, 99.0), (10, 97.0), (20, 95.0), (40, 92.0)],
    },
    "iotlb/pg": {
        "strict": [(5, 1.30), (40, 2.20)],
        "fns": [(5, 1.10), (40, 1.15)],
    },
    "m3/pg": {
        "fns": [(5, 0.045), (40, 0.045)],
    },
}

"""Fig 12 claims: each F&S idea is necessary (Redis 8 KB ablation).

A = preserve PTcaches across invalidations; B = contiguous IOVA
allocation + batched invalidation.
"""

from ..expect import FigureSpec, is_zero, within_band, wins

SPEC = FigureSpec(
    figure="fig12",
    title="Ablation: each F&S idea is necessary",
    expectations=(
        wins(
            "linux+A",
            "strict",
            "gbps",
            claim="preserving PTcaches alone helps over strict",
            paper="insufficient alone",
        ),
        wins(
            "linux+B",
            "strict",
            "gbps",
            claim="contiguity + batching alone helps over strict",
            paper="insufficient alone",
        ),
        wins(
            "fns",
            "linux+A",
            "gbps",
            claim="A alone does not reach F&S",
            paper="only A+B recovers",
        ),
        wins(
            "fns",
            "linux+B",
            "gbps",
            claim="B alone does not reach F&S",
            paper="only A+B recovers",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.9,
            claim="F&S approaches the IOMMU-off ceiling",
            paper="near off",
        ),
        within_band(
            "l3/pg",
            "linux+A",
            lo=0.02,
            claim="A alone leaves locality-driven L3 misses",
            paper="locality-driven misses remain",
        ),
        within_band(
            "l3/pg",
            "linux+B",
            lo=0.02,
            claim="B alone leaves invalidation-driven L3 misses",
            paper="invalidation-driven misses remain",
        ),
        is_zero(
            "l3/pg",
            "fns",
            tol=0.02,
            claim="F&S eliminates both L3 miss sources",
            paper="near zero",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "strict": [(8192, 35.0)],
        "linux+A": [(8192, 55.0)],
        "linux+B": [(8192, 55.0)],
        "fns": [(8192, 87.0)],
        "off": [(8192, 90.0)],
    },
}

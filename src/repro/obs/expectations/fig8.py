"""Fig 8 claims: F&S keeps locality as the IO working set grows."""

from ..expect import FigureSpec, equal, is_zero, within_band, wins

SPEC = FigureSpec(
    figure="fig8",
    title="F&S under increasing ring sizes",
    expectations=(
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.93,
            at=(256, 512, 1024),
            claim="F&S = off at small/medium rings",
            paper="equal",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.85,
            at=(2048,),
            claim="small CPU-side gap allowed at 2048-packet rings",
            paper="small gap at 2048 (CPU-bound)",
        ),
        wins(
            "fns",
            "strict",
            "gbps",
            claim="F&S above strict at every ring size",
            paper="strict below throughout",
        ),
        within_band(
            "m3/pg",
            "fns",
            hi=0.054,
            claim="F&S PTcache-L3 misses independent of working set",
            paper="<= 0.053/page at every ring size",
        ),
        is_zero(
            "m1/pg",
            "fns",
            claim="F&S PTcache-L1 misses zero at every ring size",
            paper="0",
        ),
        is_zero(
            "m2/pg",
            "fns",
            claim="F&S PTcache-L2 misses zero at every ring size",
            paper="0",
        ),
        equal(
            "loc_p95",
            mode="fns",
            between=(256, 2048),
            tol_abs=2.0,
            claim="F&S locality flat across ring sizes",
            paper="per-descriptor guarantee, size-independent",
        ),
        within_band(
            "m3/pg",
            "strict",
            lo=0.1,
            at=(2048,),
            claim="strict L3 misses stay substantial at large rings",
            paper="grows with ring size",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(256, 99.0), (512, 99.0), (1024, 99.0), (2048, 98.0)],
        "strict": [(256, 80.0), (512, 78.0), (1024, 73.0), (2048, 68.0)],
        "fns": [(256, 99.0), (512, 99.0), (1024, 98.0), (2048, 93.0)],
    },
    "m3/pg": {
        "fns": [(256, 0.053), (2048, 0.053)],
    },
}

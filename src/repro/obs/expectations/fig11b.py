"""Fig 11b claims: Nginx page-serving throughput."""

from ..expect import FigureSpec, within_band

SPEC = FigureSpec(
    figure="fig11b",
    title="Nginx throughput",
    expectations=(
        within_band(
            "gbps",
            "off",
            hi=99.0,
            claim="off is application-limited below line rate",
            paper="~90 Gbps, app-limited",
        ),
        within_band(
            "gbps",
            "strict",
            of="off",
            hi=1.1,
            claim="strict does not beat off (deviation: mild loss)",
            paper="65-70% degradation (ours much milder)",
        ),
        within_band(
            "gbps",
            "fns",
            of="off",
            lo=0.85,
            claim="F&S matches the app-limited off throughput",
            paper="equal to off",
        ),
    ),
)


# Paper reference curves for the publication overlay (``repro publish``).
# Approximate digitizations of the paper's plotted series (the claim-level
# paper-vs-ours context lives in EXPERIMENTS.md); they are drawn as dashed
# context lines in the generated figures and are never gated on.
PAPER_CURVES: dict[str, dict[str, list[tuple[float, float]]]] = {
    "gbps": {
        "off": [(131072, 90.0), (524288, 91.0), (2097152, 90.0)],
        "strict": [(131072, 29.0), (524288, 30.0), (2097152, 30.0)],
        "fns": [(131072, 90.0), (524288, 91.0), (2097152, 90.0)],
    },
}

"""repro.obs: unified observability — metrics registry, sampler, tracer.

The layer is opt-in and zero-cost when uninstalled: instrumented
subsystems read :func:`current_registry` once at construction and skip
all per-event work when it returns ``None`` (the default).  Install a
registry around an experiment with::

    from repro.obs import MetricsRegistry, SpanTracer, observed

    registry = MetricsRegistry(
        tracer=SpanTracer(), sample_interval_ns=100_000.0
    )
    with observed(registry):
        result = run_iperf("strict", flows=2)
    registry.report()          # metrics JSON document
    registry.tracer.write("trace.json")   # Perfetto-loadable

The CLI surfaces the same machinery as ``repro report`` and the global
``--trace`` flag.  The wall-clock benchmark emitter lives in
:mod:`repro.obs.bench` and is *not* imported here — it pulls in the
full host stack and would cycle with instrumented modules.
"""

from .hooks import current_registry, observed, set_registry
from .registry import Metric, MetricsRegistry, MetricsScope, Phase
from .sampler import MetricsSampler
from .tracer import SpanTracer

__all__ = [
    "current_registry",
    "set_registry",
    "observed",
    "Metric",
    "MetricsScope",
    "Phase",
    "MetricsRegistry",
    "MetricsSampler",
    "SpanTracer",
]

"""Wall-clock benchmark emitter: how fast does the simulator simulate?

``repro bench`` runs a fixed set of small iperf points, times them with
the host's real clock and writes ``BENCH_sim.json`` — the one place in
the library where wall-clock time is allowed (the lint rule REPRO001 is
silenced explicitly).  The emitted document is schema-checked so CI can
fail on malformed output rather than archiving junk.

This module deliberately lives outside ``repro.obs.__init__``: it pulls
in the whole host stack (apps → testbed → IOMMU), which would create an
import cycle if executed while ``repro.obs`` itself is being imported
by an instrumented module.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Optional

from ..host.config import HostConfig
from ..host.testbed import Testbed

__all__ = [
    "BenchPoint",
    "bench_points",
    "run_bench",
    "check_schema",
    "write_bench",
    "history_row",
    "append_history",
    "load_history",
]

SCHEMA = "repro.bench/1"
HISTORY_SCHEMA = "repro.bench-history/1"
DEFAULT_HISTORY_PATH = "bench_history.jsonl"


@dataclass(frozen=True)
class BenchPoint:
    """One benchmark configuration: a small, deterministic iperf run."""

    name: str
    mode: str
    flows: int
    warmup_ns: float
    measure_ns: float


def bench_points(full: bool = False) -> list[BenchPoint]:
    """The default benchmark set: one point per protection mode.

    The measure windows are long on purpose: the iperf rows run with
    the epoch fast-forward, which makes simulated time nearly free once
    the workload goes steady, and a longer window shows that off.
    """
    warmup = 2_000_000.0 if not full else 4_000_000.0
    measure = 15_000_000.0 if not full else 60_000_000.0
    return [
        BenchPoint("iperf_off", "off", 2, warmup, measure),
        BenchPoint("iperf_strict", "strict", 2, warmup, measure),
        BenchPoint("iperf_fns", "fns", 2, warmup, measure),
    ]


def _run_point(point: BenchPoint) -> dict:
    config = HostConfig.cascade_lake(mode=point.mode)
    testbed = Testbed(config)
    testbed.add_rx_flows(point.flows)
    # Wall-clock by design: this module measures the simulator itself.
    start = time.perf_counter()  # noqa: REPRO001
    result = testbed.run(
        warmup_ns=point.warmup_ns,
        measure_ns=point.measure_ns,
        fast_forward=True,
    )
    wall_s = time.perf_counter() - start  # noqa: REPRO001
    sim_ns = point.warmup_ns + point.measure_ns
    # Credited events (stepped + extrapolated) — deterministic, so the
    # bench diff can still require them to match exactly.
    events = testbed.sim.executed_events + testbed.sim.fast_forwarded_events
    return {
        "name": point.name,
        "mode": point.mode,
        "flows": point.flows,
        "wall_s": wall_s,
        "sim_ns": sim_ns,
        "events": events,
        "fast_forwarded_events": testbed.sim.fast_forwarded_events,
        "events_per_wall_s": events / wall_s if wall_s > 0 else 0.0,
        "sim_ns_per_wall_s": sim_ns / wall_s if wall_s > 0 else 0.0,
        "rx_goodput_gbps": result.rx_goodput_gbps,
    }


def _sweep_specs(full: bool) -> list:
    """A small mode × flows grid for the pool benchmark."""
    from ..parallel import PointSpec, derive_seed

    flows = (2, 3) if not full else (2, 5)
    return [
        PointSpec(
            figure="bench-sweep",
            runner="iperf_flows",
            mode=mode,
            x=x,
            label=f"bench-sweep {mode} flows={x}",
            seed=derive_seed(1, "bench-sweep", mode, x),
        )
        for mode in ("off", "strict", "fns")
        for x in flows
    ]


def _run_sweep(
    name: str,
    jobs: Optional[int],
    full: bool,
    chunk: Optional[int] = None,
) -> dict:
    """Time the whole sweep suite through ``run_points``.

    Emitted with the same per-point schema: ``events`` and ``sim_ns``
    aggregate over the sweep's testbeds (exact, load-independent);
    ``flows`` reports the number of sweep points.
    """
    from ..experiments.settings import FULL, QUICK
    from ..parallel import run_points

    scale = FULL if full else QUICK
    specs = _sweep_specs(full)
    start = time.perf_counter()  # noqa: REPRO001
    results = run_points(specs, scale, jobs=jobs, chunk=chunk)
    wall_s = time.perf_counter() - start  # noqa: REPRO001
    events = sum(r.extras["executed_events"] for r in results)
    sim_ns = len(specs) * (scale.warmup_ns + scale.measure_ns)
    return {
        "name": name,
        "mode": "sweep",
        "flows": len(specs),
        "wall_s": wall_s,
        "sim_ns": sim_ns,
        "events": events,
        "events_per_wall_s": events / wall_s if wall_s > 0 else 0.0,
        "sim_ns_per_wall_s": sim_ns / wall_s if wall_s > 0 else 0.0,
    }


def _run_cache_sweep(full: bool) -> list[dict]:
    """Time the sweep suite cold and warm through the result cache.

    ``reproduce_cold`` runs the sweep against a fresh (empty) store in
    a temporary directory — every cell computes and streams into the
    cache — and ``reproduce_warm`` immediately reruns the identical
    sweep so every cell is served from the store.  The events counters
    are identical by construction (warm cells return the stored
    values), which lets the bench diff require them to match exactly
    while gating on the wall-clock ratio.
    """
    import tempfile

    from ..cache.hooks import result_cached
    from ..cache.store import ResultCache
    from ..experiments.settings import FULL, QUICK
    from ..parallel import run_points

    scale = FULL if full else QUICK
    specs = _sweep_specs(full)
    sim_ns = len(specs) * (scale.warmup_ns + scale.measure_ns)
    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        with result_cached(cache):
            for name in ("reproduce_cold", "reproduce_warm"):
                start = time.perf_counter()  # noqa: REPRO001
                results = run_points(specs, scale)
                wall_s = time.perf_counter() - start  # noqa: REPRO001
                events = sum(
                    r.extras["executed_events"] for r in results
                )
                rows.append({
                    "name": name,
                    "mode": "sweep",
                    "flows": len(specs),
                    "wall_s": wall_s,
                    "sim_ns": sim_ns,
                    "events": events,
                    "events_per_wall_s": (
                        events / wall_s if wall_s > 0 else 0.0
                    ),
                    "sim_ns_per_wall_s": (
                        sim_ns / wall_s if wall_s > 0 else 0.0
                    ),
                })
    return rows


def run_bench(
    full: bool = False,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
) -> dict:
    """Run every benchmark point and return the ``BENCH_sim.json`` doc.

    Always includes the ``reproduce_cold``/``reproduce_warm`` pair —
    the sweep suite through an empty result cache and again fully warm
    — so the committed document records (and ``repro diff`` gates) the
    cache's wall-clock win alongside raw simulator speed.

    With ``jobs > 1`` the sweep suite is timed three ways — serially,
    through the ``--jobs`` pool with the auto chunk size, and with an
    explicit small chunk — so the document records the multi-job
    wall-clock win alongside the serial iperf points.

    Ordering matters for the warm pool: the serial sweep runs first
    (paying the one-time process-level warmup — imports, specialized
    bytecode, the aged-allocator cache), then the pool is forked, so
    workers inherit that warm state via copy-on-write and the parallel
    sweeps measure dispatch, not re-warming.  The pool fork itself is a
    per-invocation cost and is deliberately not billed to any row.
    """
    benchmarks: list[dict] = []
    if jobs is not None and jobs > 1:
        from ..parallel import warm_pool

        benchmarks.append(_run_sweep("sweep_serial", None, full))
        warm_pool(jobs)
        benchmarks.append(
            _run_sweep(f"sweep_jobs{jobs}", jobs, full, chunk=chunk)
        )
        benchmarks.append(
            _run_sweep(f"sweep_jobs{jobs}_chunked", jobs, full, chunk=3)
        )
    benchmarks.extend(_run_cache_sweep(full))
    benchmarks.extend(_run_point(point) for point in bench_points(full))
    return {
        "schema": SCHEMA,
        "provenance": _provenance(full),
        "benchmarks": benchmarks,
        "total_wall_s": sum(b["wall_s"] for b in benchmarks),
    }


def _provenance(full: bool) -> dict:
    """Who/when/what for a bench run: git sha, UTC time, run scale.

    ``report.json`` has carried this since PR 4; stamping the bench
    document the same way lets ``repro diff`` name the shas it is
    comparing and gives every ``bench_history.jsonl`` row an anchor.
    Wall-clock time is by design here (same as the timings themselves).
    """
    from .expect.reproduce import _git_dirty, _git_sha

    stamp = datetime.now(timezone.utc)  # noqa: REPRO001
    return {
        "git_sha": _git_sha(),
        "git_dirty": _git_dirty(),
        "utc": stamp.strftime("%Y-%m-%dT%H:%M:%SZ"),
        "scale": "full" if full else "quick",
    }


_REQUIRED_POINT_KEYS = {
    "name": str,
    "mode": str,
    "flows": int,
    "wall_s": (int, float),
    "sim_ns": (int, float),
    "events": int,
    "events_per_wall_s": (int, float),
    "sim_ns_per_wall_s": (int, float),
}


def check_schema(doc: object) -> list[str]:
    """Validate a ``BENCH_sim.json`` document; returns problem strings."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}"
        )
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        problems.append("benchmarks must be a non-empty list")
        benchmarks = []
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, dict):
            problems.append(f"benchmarks[{i}] must be an object")
            continue
        for key, kinds in _REQUIRED_POINT_KEYS.items():
            value = bench.get(key)
            if not isinstance(value, kinds) or isinstance(value, bool):
                problems.append(
                    f"benchmarks[{i}].{key} missing or wrong type"
                )
        wall = bench.get("wall_s")
        if isinstance(wall, (int, float)) and wall <= 0:
            problems.append(f"benchmarks[{i}].wall_s must be positive")
    total = doc.get("total_wall_s")
    if not isinstance(total, (int, float)):
        problems.append("total_wall_s missing or wrong type")
    provenance = doc.get("provenance")
    if provenance is not None:  # legacy documents predate the stamp
        if not isinstance(provenance, dict):
            problems.append("provenance must be an object")
        else:
            for key in ("git_sha", "utc", "scale"):
                if not isinstance(provenance.get(key), str):
                    problems.append(
                        f"provenance.{key} missing or wrong type"
                    )
    return problems


# ----------------------------------------------------------------------
# bench_history.jsonl — the committed wall-clock trend
# ----------------------------------------------------------------------
def history_row(doc: dict) -> dict:
    """Distill a bench document into one ``bench_history.jsonl`` row.

    Keeps the provenance anchor plus, per benchmark, the trend metric
    (``events_per_wall_s``) and the deterministic work counter
    (``events``) that lets a reader tell a faster simulator from a
    smaller workload.
    """
    provenance = doc.get("provenance") or {}
    return {
        "schema": HISTORY_SCHEMA,
        "git_sha": provenance.get("git_sha", "unknown"),
        "git_dirty": provenance.get("git_dirty"),
        "utc": provenance.get("utc", "unknown"),
        "scale": provenance.get("scale", "unknown"),
        "benchmarks": {
            bench["name"]: {
                "events_per_wall_s": bench.get("events_per_wall_s"),
                "events": bench.get("events"),
                "wall_s": bench.get("wall_s"),
            }
            for bench in doc.get("benchmarks", [])
            if isinstance(bench, dict) and "name" in bench
        },
        "total_wall_s": doc.get("total_wall_s"),
    }


def _same_trend_row(row: dict, last: dict) -> bool:
    """Would appending ``row`` after ``last`` add any information?

    True when the sha (plus dirty state) and every benchmark number
    are identical — i.e. the exact same bench document appended twice
    (a re-run CI job, a retried publish step).  The ``utc`` stamp is
    deliberately ignored: it differs on every invocation and is the
    only thing a duplicate row would contribute.
    """
    ignored = {"utc"}
    keys = (set(row) | set(last)) - ignored
    return all(row.get(key) == last.get(key) for key in keys)


def append_history(doc: dict, path: str) -> Optional[dict]:
    """Append one history row for ``doc``; returns the row.

    Returns ``None`` without writing when the row would duplicate the
    last valid line of the file (same sha, same benchmark numbers) —
    the committed trend stays one row per distinct bench result.
    """
    row = history_row(doc)
    previous = load_history(path)
    if previous and _same_trend_row(row, previous[-1]):
        return None
    with open(path, "a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_history(path: str) -> list[dict]:
    """Read ``bench_history.jsonl`` rows, skipping malformed lines."""
    rows: list[dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if (
                    isinstance(row, dict)
                    and row.get("schema") == HISTORY_SCHEMA
                ):
                    rows.append(row)
    except OSError:
        return []
    return rows


def write_bench(
    path: str,
    full: bool = False,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    history_path: Optional[str] = DEFAULT_HISTORY_PATH,
) -> dict:
    """Run the benchmarks, write the document, append the trend row.

    ``history_path=None`` skips the append (used by ``--no-history``
    and by tests that only care about the document).
    """
    doc = run_bench(full=full, jobs=jobs, chunk=chunk)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    if history_path is not None:
        append_history(doc, history_path)
    return doc

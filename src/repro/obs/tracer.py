"""Span/event tracer emitting Chrome-trace (Perfetto-loadable) JSON.

The exported file follows the Trace Event Format's JSON-object flavour:
``{"traceEvents": [...], "displayTimeUnit": "ns"}`` where each entry is
a *complete* event (``"ph": "X"`` with ``ts``/``dur`` in microseconds),
an *instant* event (``"ph": "i"``) or metadata (``"ph": "M"``) naming
processes and threads.  Load the file at https://ui.perfetto.dev or in
``chrome://tracing``.

Mapping onto the simulation:

* **pid** — one experiment *phase* (one figure point / one testbed);
  phases start their simulated clock at 0, so separate pids keep their
  timelines from overlapping.
* **tid** — one *track* within a phase: the PCIe Rx/Tx pipelines, the
  IOMMU walker channels, the invalidation queue, driver recovery.
* **span** — one DMA, one page walk, one invalidation descriptor wait;
  retries and degraded flushes are instant events on the driver track.

Timestamps come from a bound simulated clock (see :meth:`bind_clock`);
without one, explicit span times still work and instants stamp 0.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

__all__ = ["SpanTracer"]


class SpanTracer:
    """Collects Chrome-trace events from instrumented span sites."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped_events = 0
        self._clock: Optional[Callable[[], float]] = None
        self._pid = 0
        self._tids: dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # Clock and process (phase) management
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind the simulated clock (ns) used by clockless span sites."""
        self._clock = clock

    def now(self) -> float:
        """Current simulated time in ns (0.0 when no clock is bound)."""
        clock = self._clock
        return clock() if clock is not None else 0.0

    def set_process(self, pid: int, label: str) -> None:
        """Route subsequent events to Chrome-trace process ``pid``."""
        self._pid = pid
        self._push(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        track: str,
        start_ns: float,
        duration_ns: float,
        **args: object,
    ) -> None:
        """One finished span: ``[start_ns, start_ns + duration_ns)``."""
        event = {
            "name": name,
            "ph": "X",
            "ts": start_ns / 1000.0,  # Chrome trace wants microseconds
            "dur": max(duration_ns, 0.0) / 1000.0,
            "pid": self._pid,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._push(event)

    def instant(
        self,
        name: str,
        track: str,
        ts_ns: Optional[float] = None,
        **args: object,
    ) -> None:
        """A point event (retry, degraded flush, drop)."""
        event = {
            "name": name,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": (self.now() if ts_ns is None else ts_ns) / 1000.0,
            "pid": self._pid,
            "tid": self._tid(track),
        }
        if args:
            event["args"] = args
        self._push(event)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"traceEvents": self.events, "displayTimeUnit": "ns"}

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tid(self, track: str) -> int:
        key = (self._pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([k for k in self._tids if k[0] == self._pid]) + 1
            self._tids[key] = tid
            self._push(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    def _push(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

"""The ``repro diff`` driver: differential regression gating.

Compares two machine-readable run documents — either two
``report.json`` files (``repro.report/1``) or two ``BENCH_sim.json``
files (``repro.bench/1``) — and reports regressions:

* report vs report: claims that passed before and fail now (and, as
  notes, claims that newly pass or changed config hashes);
* bench vs bench: per-benchmark comparisons split into *exact* work
  counters and *noisy* wall-clock ratios.  ``events`` and ``sim_ns``
  are deterministic — any mismatch means the simulation itself changed
  and is a regression.  Wall-clock ratios beyond the threshold
  (default 25%) are regressions only when the work counters are absent
  or disagree; when both sides demonstrably did identical work, a slow
  wall clock is indistinguishable from a loaded machine and is
  reported as a note instead — so a busy CI runner cannot fail the
  gate on noise alone.

This is the perf/claims gate CI runs against the committed baselines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["DiffResult", "diff_documents"]


@dataclass
class DiffResult:
    """Regressions fail the gate; improvements and notes are FYI."""

    kind: str  # "report" or "bench"
    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [f"diff ({self.kind}):"]
        for text in self.regressions:
            lines.append(f"  REGRESSION  {text}")
        for text in self.improvements:
            lines.append(f"  improved    {text}")
        for text in self.notes:
            lines.append(f"  note        {text}")
        if not (self.regressions or self.improvements or self.notes):
            lines.append("  no differences")
        lines.append(
            f"  -> {'OK' if self.ok else 'FAIL'} "
            f"({len(self.regressions)} regression(s))"
        )
        return "\n".join(lines)


def diff_documents(
    old: dict, new: dict, threshold: float = 0.25
) -> DiffResult:
    """Compare two report/bench documents; raises ValueError on junk."""
    old_schema = old.get("schema") if isinstance(old, dict) else None
    new_schema = new.get("schema") if isinstance(new, dict) else None
    if old_schema != new_schema:
        raise ValueError(
            f"schema mismatch: {old_schema!r} vs {new_schema!r}"
        )
    if old_schema == "repro.report/1":
        return _diff_reports(old, new)
    if old_schema == "repro.bench/1":
        return _diff_bench(old, new, threshold)
    raise ValueError(f"unsupported schema {old_schema!r}")


def _sha_note(result: DiffResult, old: dict, new: dict) -> None:
    """Name the git shas being compared (when either side is stamped).

    Both report and (since the provenance stamping) bench documents
    carry ``provenance.git_sha``; legacy bench documents without one
    stay silent so a diff of two unstamped files reads unchanged.
    """
    old_prov = old.get("provenance") or {}
    new_prov = new.get("provenance") or {}
    old_sha = old_prov.get("git_sha")
    new_sha = new_prov.get("git_sha")
    if old_sha is None and new_sha is None:
        return

    def short(prov: dict) -> str:
        sha = prov.get("git_sha")
        text = sha[:12] if isinstance(sha, str) and sha else "unknown"
        if prov.get("git_dirty"):
            text += "+dirty"
        return text

    result.notes.append(
        f"comparing git shas {short(old_prov)} -> {short(new_prov)}"
    )


def _cache_note(result: DiffResult, old: dict, new: dict) -> None:
    """Flag warm-vs-cold comparisons (different cache temperature).

    ``repro reproduce`` stamps ``provenance.cache`` with
    ``cells_cached``/``cells_computed``; comparing a warm document
    against a cold one is still byte-identical by design, but the
    reader should know the two runs exercised different executors.
    """

    def temperature(doc: dict) -> str:
        stamp = (doc.get("provenance") or {}).get("cache")
        if not isinstance(stamp, dict):
            return "uncached"
        cached = stamp.get("cells_cached") or 0
        computed = stamp.get("cells_computed") or 0
        if cached and not computed:
            return "warm"
        if computed and not cached:
            return "cold"
        return f"mixed ({cached} cached, {computed} computed)"

    old_temp = temperature(old)
    new_temp = temperature(new)
    if old_temp != new_temp:
        result.notes.append(
            f"cache temperature differs: {old_temp} -> {new_temp} "
            "(warm runs adopt stored phases; reports stay comparable)"
        )


# ----------------------------------------------------------------------
# report.json vs report.json — claim-level gating
# ----------------------------------------------------------------------
def _claims(doc: dict) -> dict[tuple[str, str], str]:
    out: dict[tuple[str, str], str] = {}
    for figure in doc.get("figures", []):
        for claim in figure.get("claims", []):
            key = (figure.get("figure", "?"), claim.get("claim", "?"))
            out[key] = claim.get("status", "?")
    return out


def _diff_reports(old: dict, new: dict) -> DiffResult:
    result = DiffResult(kind="report")
    _sha_note(result, old, new)
    _cache_note(result, old, new)
    old_claims = _claims(old)
    new_claims = _claims(new)
    for key, new_status in new_claims.items():
        old_status = old_claims.get(key)
        label = f"{key[0]}: {key[1]}"
        if old_status is None:
            result.notes.append(f"new claim {label} [{new_status}]")
        elif old_status == "pass" and new_status == "fail":
            result.regressions.append(f"{label} (pass -> fail)")
        elif old_status == "fail" and new_status == "pass":
            result.improvements.append(f"{label} (fail -> pass)")
        elif old_status != new_status:
            result.notes.append(
                f"{label} ({old_status} -> {new_status})"
            )
    for key in old_claims:
        if key not in new_claims:
            result.regressions.append(
                f"{key[0]}: {key[1]} (claim disappeared)"
            )
    old_hash = old.get("provenance", {}).get("config_hash")
    new_hash = new.get("provenance", {}).get("config_hash")
    if old_hash != new_hash:
        result.notes.append(
            f"config hash changed ({old_hash} -> {new_hash}): "
            "figures, scale, seed or specs differ"
        )
    return result


# ----------------------------------------------------------------------
# BENCH_sim.json vs BENCH_sim.json — wall-clock gating
# ----------------------------------------------------------------------
def _diff_bench(old: dict, new: dict, threshold: float) -> DiffResult:
    result = DiffResult(kind="bench")
    _sha_note(result, old, new)
    old_points = {
        b.get("name", "?"): b for b in old.get("benchmarks", [])
    }
    new_points = {
        b.get("name", "?"): b for b in new.get("benchmarks", [])
    }
    shared_work_matches = []
    for name, new_point in new_points.items():
        old_point = old_points.get(name)
        if old_point is None:
            result.notes.append(f"new benchmark {name}")
            continue
        same_work = _compare_exact(result, name, old_point, new_point)
        shared_work_matches.append(same_work)
        _compare_wall(
            result, name, old_point.get("wall_s"),
            new_point.get("wall_s"), threshold,
            demote_to_note=same_work,
        )
    for name in old_points:
        if name not in new_points:
            result.regressions.append(f"benchmark {name} disappeared")
    # The total has no work counters of its own; it is provably
    # noise-only when the two documents cover the same benchmarks and
    # every one did identical work.
    same_names = old_points.keys() == new_points.keys()
    all_same_work = (
        bool(shared_work_matches)
        and all(shared_work_matches)
        and same_names
    )
    old_total = old.get("total_wall_s")
    new_total = new.get("total_wall_s")
    if not same_names:
        # Raw totals cover different work once a row appears or
        # disappears; gate the sum over the shared rows instead so a
        # grown suite does not read as a slowdown.
        shared = old_points.keys() & new_points.keys()
        old_total = _wall_sum(old_points, shared)
        new_total = _wall_sum(new_points, shared)
        result.notes.append(
            f"benchmark sets differ; total gated over {len(shared)} "
            "shared row(s)"
        )
    _compare_wall(
        result,
        "total",
        old_total,
        new_total,
        threshold,
        demote_to_note=all_same_work,
    )
    _check_parallel_wins(result, new_points)
    _check_cache_wins(result, new_points)
    return result


# The warm sweep must beat the cold one by at least this factor; the
# acceptance bar for the result cache (a warm run executes nothing).
_CACHE_MIN_SPEEDUP = 4.0


def _check_cache_wins(
    result: DiffResult, new_points: dict[str, dict]
) -> None:
    """Fail when the warm sweep is not >= 4x faster than the cold one.

    Gated on the new document alone, like :func:`_check_parallel_wins`:
    a ``reproduce_warm`` row within 4x of ``reproduce_cold`` means the
    cache is loading, unpickling or keying slower than simply
    re-simulating — the regression the store exists to prevent.
    """
    cold = new_points.get("reproduce_cold")
    warm = new_points.get("reproduce_warm")
    if cold is None or warm is None:
        return
    cold_wall = cold.get("wall_s")
    warm_wall = warm.get("wall_s")
    if not isinstance(cold_wall, (int, float)) or not isinstance(
        warm_wall, (int, float)
    ):
        return
    if warm_wall <= 0:
        return
    speedup = cold_wall / warm_wall
    if speedup < _CACHE_MIN_SPEEDUP:
        result.regressions.append(
            f"reproduce_warm only {speedup:.2f}x faster than "
            f"reproduce_cold (need >= {_CACHE_MIN_SPEEDUP:.0f}x)"
        )
    if warm.get("events") != cold.get("events"):
        result.regressions.append(
            "reproduce_warm events differ from reproduce_cold "
            f"({warm.get('events')} != {cold.get('events')}): "
            "cached values do not match computed ones"
        )


def _wall_sum(
    points: dict[str, dict], names: set[str]
) -> float | None:
    """Sum ``wall_s`` over *names*; None when any row lacks a number."""
    total = 0.0
    for name in names:
        wall = points[name].get("wall_s")
        if not isinstance(wall, (int, float)):
            return None
        total += wall
    return total


def _check_parallel_wins(
    result: DiffResult, new_points: dict[str, dict]
) -> None:
    """Fail when the pool loses to the serial sweep in the new doc.

    This is the guard the warm-worker/chunking work exists to hold: a
    ``sweep_jobsN`` row throughput-slower than ``sweep_serial`` means
    dispatch overhead ate the parallelism again, regardless of how the
    numbers moved relative to the old document.
    """
    serial = new_points.get("sweep_serial")
    if serial is None:
        return
    serial_rate = serial.get("events_per_wall_s")
    if not isinstance(serial_rate, (int, float)):
        return
    for name, point in new_points.items():
        # Only the auto-chunked pool rows are gated; the explicit
        # small-chunk diagnostic row (sweep_jobsN_chunked) documents a
        # tuning point and may legitimately lose on some machines.
        if not re.fullmatch(r"sweep_jobs\d+", name):
            continue
        rate = point.get("events_per_wall_s")
        if not isinstance(rate, (int, float)):
            continue
        if rate < serial_rate:
            result.regressions.append(
                f"{name} slower than sweep_serial "
                f"({rate:,.0f} < {serial_rate:,.0f} events/wall-s)"
            )


# The load-independent per-benchmark fields: equal inputs must produce
# exactly equal values, however busy the machine is.
_EXACT_KEYS = ("events", "sim_ns")


def _compare_exact(
    result: DiffResult, name: str, old_point: dict, new_point: dict
) -> bool:
    """Diff the deterministic work counters; True when all match.

    A mismatch is always a regression-class signal: the simulator did
    different *work*, which no amount of machine load explains.
    Returns False (work not proven identical) when any counter is
    absent on either side, so legacy documents keep the strict
    wall-clock gate.
    """
    matched = True
    for key in _EXACT_KEYS:
        old_value = old_point.get(key)
        new_value = new_point.get(key)
        if not isinstance(old_value, (int, float)) or not isinstance(
            new_value, (int, float)
        ):
            matched = False
            continue
        if old_value != new_value:
            matched = False
            result.regressions.append(
                f"{name}: {key} {old_value} -> {new_value} "
                "(deterministic work changed)"
            )
    return matched


def _compare_wall(
    result: DiffResult,
    name: str,
    old_wall: object,
    new_wall: object,
    threshold: float,
    demote_to_note: bool = False,
) -> None:
    if not isinstance(old_wall, (int, float)) or not isinstance(
        new_wall, (int, float)
    ):
        result.notes.append(f"{name}: wall_s missing on one side")
        return
    if old_wall <= 0:
        result.notes.append(f"{name}: non-positive baseline wall_s")
        return
    ratio = new_wall / old_wall
    detail = (
        f"{name}: wall {old_wall:.3f}s -> {new_wall:.3f}s "
        f"({ratio:.2f}x)"
    )
    if ratio > 1.0 + threshold:
        if demote_to_note:
            # Both sides did byte-identical work (events/sim_ns match),
            # so the slowdown cannot be separated from machine load;
            # surface it without failing the gate.
            result.notes.append(
                f"{detail} — identical work; likely machine load"
            )
        else:
            result.regressions.append(detail)
    elif ratio < 1.0 - threshold:
        result.improvements.append(detail)

"""The ``repro reproduce`` driver: run figures, gate on paper claims.

Runs the selected figure sweeps with a metrics registry installed,
evaluates each figure's expectation spec, and writes:

* ``REPORT.md`` — a generated paper-vs-ours report with a ✓/✗ table
  per claim, replacing hand-maintained drift in ``EXPERIMENTS.md``;
* ``report.json`` — the same content machine-readable, stamped with a
  run-provenance manifest (seed, config hash, scale, git sha) so two
  reports can be compared with ``repro diff``.

Exit status is nonzero when any claim is violated, making the report a
CI gate as well as a document.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import subprocess
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ...cache.store import ResultCache

from ...analysis.report import format_markdown_table
from ...experiments.settings import RunScale
from ..hooks import observed
from ..registry import MetricsRegistry
from .engine import FigureEvaluation, FigureSpec, evaluate_figure

__all__ = [
    "REPORT_SCHEMA",
    "default_runners",
    "provenance",
    "collect_sections",
    "report_doc",
    "run_reproduce",
    "render_report_md",
]

REPORT_SCHEMA = "repro.report/1"


def default_runners() -> dict[str, Callable]:
    """CLI figure key -> runner, for every figure that has a spec."""
    from ... import experiments as exp

    return {
        "fig2": exp.fig2_flows,
        "fig3": exp.fig3_ring,
        "model": exp.model_fit,
        "fig7": exp.fig7_fns_flows,
        "fig8": exp.fig8_fns_ring,
        "fig9": exp.fig9_rpc_latency,
        "fig10": exp.fig10_rxtx,
        "fig11a": exp.fig11_redis,
        "fig11b": exp.fig11_nginx,
        "fig11c": exp.fig11_spdk,
        "fig12": exp.fig12_ablation,
    }


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _git_dirty() -> Optional[bool]:
    """Whether the worktree differs from HEAD; ``None`` when unknowable.

    A dirty worktree used to stamp a clean-looking sha into
    ``report.json`` and ``bench_history.jsonl`` — indistinguishable
    from a run of the committed code.  The flag travels next to the
    sha so trend rows and report diffs can discount uncommitted runs.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return bool(out.stdout.strip())


def provenance(
    figures: Sequence[str],
    scale: RunScale,
    seed: int,
    specs: dict[str, FigureSpec],
    cache_stats: Optional[dict] = None,
) -> dict:
    """The run-provenance manifest stamped into ``report.json``.

    The config hash covers everything that determines the report's
    content in a deterministic run: the figure list, the run scale, the
    seed and the expectation specs themselves.  Two reports with equal
    config hashes are directly comparable; a changed spec changes the
    hash, flagging that a diff crosses an expectation revision.
    """
    config = {
        "figures": list(figures),
        "scale": {
            "name": scale.name,
            "warmup_ns": scale.warmup_ns,
            "measure_ns": scale.measure_ns,
            "latency_measure_ns": scale.latency_measure_ns,
        },
        "seed": seed,
        "specs": [
            part
            for key in figures
            if key in specs
            for part in specs[key].digest_parts()
        ],
    }
    digest = hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()
    manifest = {
        "git_sha": _git_sha(),
        "git_dirty": _git_dirty(),
        "scale": scale.name,
        "seed": seed,
        "figures": list(figures),
        "config_hash": digest[:16],
    }
    if cache_stats is not None:
        # Not part of the config hash: whether cells came from the
        # store is run history, not run identity.  ``repro diff`` uses
        # it to flag warm-vs-cold comparisons.
        manifest["cache"] = dict(cache_stats)
    return manifest


def _truncated_phases(metrics: dict) -> list[str]:
    return [
        phase.get("label", "?")
        for phase in metrics.get("phases", [])
        if phase.get("truncated")
    ]


def _runner_kwargs(
    runner: Callable,
    scale: RunScale,
    jobs: Optional[int],
    seed: int,
    chunk: Optional[int] = None,
) -> dict:
    """Only pass ``jobs``/``chunk``/``seed`` to runners that take them.

    Injected test runners (and any future figure without a sweep) may
    accept just ``scale``; probing the signature keeps them working.
    """
    kwargs: dict = {"scale": scale}
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins/partials without a sig
        return kwargs
    if "jobs" in parameters:
        kwargs["jobs"] = jobs
    if "chunk" in parameters:
        kwargs["chunk"] = chunk
    if "seed" in parameters:
        kwargs["seed"] = seed
    return kwargs


def collect_sections(
    names: Sequence[str],
    *,
    scale: RunScale,
    seed: int = 1,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    runners: Optional[dict[str, Callable]] = None,
    specs: Optional[dict[str, FigureSpec]] = None,
    echo: Callable[[str], None] = print,
) -> list[dict]:
    """Run each named figure and evaluate its spec; the shared core.

    Both ``repro reproduce`` and ``repro publish`` build their report
    document through this loop, so the sweep data behind a published
    figure is byte-identical to the gated report (and, via
    :mod:`repro.parallel`, identical at any ``--jobs``).
    """
    from ...cache.hooks import cache_keyed
    from ..expectations import SPECS

    runners = runners if runners is not None else default_runners()
    specs = specs if specs is not None else SPECS
    sections = []
    for name in names:
        registry = MetricsRegistry()
        # Each figure's cells are keyed under its expectation spec's
        # digest parts: editing one spec invalidates exactly that
        # figure's cache entries (a no-op when no cache is installed).
        with cache_keyed(specs[name].digest_parts()):
            with observed(registry):
                result = runners[name](
                    **_runner_kwargs(runners[name], scale, jobs, seed, chunk)
                )
        metrics = registry.report()
        evaluation = evaluate_figure(specs[name], result, metrics=metrics)
        echo(result.format())
        echo(evaluation.format())
        sections.append(
            {
                "figure": name,
                "figure_id": result.figure_id,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
                "evaluation": evaluation,
                "truncated_phases": _truncated_phases(metrics),
            }
        )
    return sections


def run_reproduce(
    figures: Optional[Sequence[str]] = None,
    *,
    scale: RunScale,
    seed: int = 1,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    report_path: str = "REPORT.md",
    json_path: str = "report.json",
    runners: Optional[dict[str, Callable]] = None,
    specs: Optional[dict[str, FigureSpec]] = None,
    echo: Callable[[str], None] = print,
    cache: Optional["ResultCache"] = None,
) -> int:
    """Run figures, evaluate claims, write both reports; 1 on failure.

    ``jobs > 1`` fans each figure's sweep points across a process pool
    (:mod:`repro.parallel`); reports are identical to a serial run.
    ``cache`` installs a content-addressed result cache for the run:
    unchanged cells are served from the store (the report stays
    byte-identical to a cold run apart from the ``provenance.cache``
    stamp) and computed cells are written back.
    """
    from ...cache.hooks import result_cached
    from ..expectations import SPECS

    runners = runners if runners is not None else default_runners()
    specs = specs if specs is not None else SPECS
    names = list(figures) if figures else [
        key for key in runners if key in specs
    ]
    unknown = [n for n in names if n not in runners or n not in specs]
    if unknown:
        echo(
            f"no runner/spec for {unknown}; "
            f"available: {[k for k in runners if k in specs]}"
        )
        return 2

    # Snapshot, not absolute counters: one ResultCache instance may
    # serve many runs (`repro serve` shares the store across jobs) and
    # each report must stamp only its own hits and misses.
    before = cache.stats.as_dict() if cache is not None else {}
    with result_cached(cache):
        sections = collect_sections(
            names,
            scale=scale,
            seed=seed,
            jobs=jobs,
            chunk=chunk,
            runners=runners,
            specs=specs,
            echo=echo,
        )
    cache_stats = None
    if cache is not None:
        after = cache.stats.as_dict()
        cache_stats = {
            "cells_cached": after["hits"] - before["hits"],
            "cells_computed": after["misses"] - before["misses"],
            "bytes_read": after["bytes_read"] - before["bytes_read"],
            "bytes_written": (
                after["bytes_written"] - before["bytes_written"]
            ),
        }
    manifest = provenance(names, scale, seed, specs, cache_stats)
    doc = report_doc(manifest, sections)
    with open(json_path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    with open(report_path, "w") as handle:
        handle.write(render_report_md(manifest, sections))
    summary = doc["summary"]
    echo(
        f"\n{summary['passed']}/{summary['claims']} claims pass "
        f"({summary['failed']} failed, {summary['skipped']} skipped)"
        f"\nreport: {report_path}\njson:   {json_path}"
    )
    if cache is not None:
        echo(f"cache:  {cache.stats.summary()} ({cache.directory})")
    return 1 if summary["failed"] else 0


def report_doc(manifest: dict, sections: list[dict]) -> dict:
    """The machine-readable ``report.json`` document (claims included)."""
    figures = []
    totals = {"claims": 0, "passed": 0, "failed": 0, "skipped": 0}
    for section in sections:
        evaluation: FigureEvaluation = section["evaluation"]
        counts = evaluation.counts()
        for key in totals:
            totals[key] += counts[key]
        figures.append(
            {
                "figure": section["figure"],
                "figure_id": section["figure_id"],
                "title": section["title"],
                "headers": section["headers"],
                "rows": section["rows"],
                "claims": evaluation.to_claims(),
                "truncated_phases": section["truncated_phases"],
            }
        )
    return {
        "schema": REPORT_SCHEMA,
        "provenance": manifest,
        "figures": figures,
        "summary": totals,
    }


def render_report_md(manifest: dict, sections: list[dict]) -> str:
    """The human-readable ``REPORT.md`` document."""
    totals = {"claims": 0, "passed": 0, "failed": 0, "skipped": 0}
    for section in sections:
        counts = section["evaluation"].counts()
        for key in totals:
            totals[key] += counts[key]
    lines = [
        "# REPORT — paper claims vs this reproduction",
        "",
        "Generated by `repro reproduce`; do not edit by hand.",
        "Regenerate whenever a figure runner or expectation spec",
        "changes (`PYTHONPATH=src python -m repro reproduce`).",
        "",
        "## Provenance",
        "",
        f"- git sha: `{manifest['git_sha']}`"
        + (" (dirty worktree)" if manifest.get("git_dirty") else ""),
        f"- run scale: `{manifest['scale']}`, seed {manifest['seed']}",
        f"- config hash: `{manifest['config_hash']}`",
        f"- figures: {', '.join(manifest['figures'])}",
        f"- claims: **{totals['passed']}/{totals['claims']} pass**"
        + (
            f", {totals['failed']} FAILED"
            if totals["failed"]
            else ""
        )
        + (
            f", {totals['skipped']} skipped"
            if totals["skipped"]
            else ""
        ),
        "",
    ]
    for section in sections:
        evaluation: FigureEvaluation = section["evaluation"]
        lines.append(
            f"## {section['figure_id']} — {section['title']}"
        )
        lines.append("")
        claim_rows = [
            [o.symbol, o.expectation.claim, o.expectation.paper, o.observed]
            for o in evaluation.outcomes
        ]
        lines.append(
            format_markdown_table(
                ["", "claim", "paper", "ours"], claim_rows
            )
        )
        lines.append("")
        for label in section["truncated_phases"]:
            lines.append(
                f"> **warning:** metric time series truncated at the "
                f"sample cap in phase `{label}` (finals unaffected)."
            )
        if section["truncated_phases"]:
            lines.append("")
        lines.append("<details><summary>reproduced table</summary>")
        lines.append("")
        lines.append("```")
        lines.append(_table_text(section))
        lines.append("```")
        lines.append("")
        lines.append("</details>")
        lines.append("")
    return "\n".join(lines)


def _table_text(section: dict) -> str:
    from ...analysis.report import format_figure

    return format_figure(
        f"{section['figure_id']}: {section['title']}",
        section["headers"],
        section["rows"],
        section.get("notes", ""),
    ).strip()

"""The eight expectation verbs: qualitative paper claims as objects.

Every claim the paper makes about a figure is one of a small number of
*shapes*; each shape is one verb here.  A spec file instantiates verbs
with row/column selectors and bounds, and the engine evaluates them
against the reproduced :class:`~repro.experiments.FigureResult` rows
(and, for metric-based claims, against the final values of a
:class:`~repro.obs.MetricsRegistry` phase).

Selectors shared by the row-based verbs:

``column``
    A header name from the figure's table (``"gbps"``, ``"m3/pg"``).
``mode``
    The series (row[0]): ``"off"``, ``"strict"``, ``"fns"``, ... —
    ``None`` selects every row (used by mode-less figures).
``at``
    A tuple of x values (row[1]) to check; ``None`` means every x the
    sweep produced, so specs stay valid when a test runs a sub-sweep.

Each verb records a human-readable ``claim`` plus the ``paper`` value
it encodes; the generated ``REPORT.md`` prints both next to the
observed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from .engine import EvalContext

__all__ = [
    "Expectation",
    "Outcome",
    "is_zero",
    "equal",
    "grows_with",
    "declines_with",
    "wins",
    "within_band",
    "crossover_at",
    "largest_class",
]


@dataclass(frozen=True)
class Outcome:
    """One evaluated expectation: pass/fail/skip plus observed values."""

    expectation: "Expectation"
    status: str  # "pass" | "fail" | "skip"
    observed: str

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    @property
    def symbol(self) -> str:
        return {"pass": "✓", "fail": "✗", "skip": "–"}[self.status]

    def describe(self) -> str:
        return (
            f"[{self.symbol}] {self.expectation.claim} "
            f"(observed: {self.observed})"
        )


class SpecError(Exception):
    """A spec referenced a column/mode/x the figure does not produce."""


@dataclass(frozen=True)
class Expectation:
    """Base verb: a claim, the paper's value, and row selectors."""

    kind: str = field(init=False, default="")
    claim: str = ""
    paper: str = ""

    def evaluate(self, ctx: "EvalContext") -> Outcome:
        try:
            status, observed = self._eval(ctx)
        except SpecError as exc:
            status, observed = "fail", f"spec error: {exc}"
        return Outcome(self, status, observed)

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        raise NotImplementedError

    # -- row/column helpers (shared by the row-based verbs) ------------
    @staticmethod
    def _col(ctx: "EvalContext", name: str) -> int:
        try:
            return ctx.result.headers.index(name)
        except ValueError:
            raise SpecError(
                f"no column {name!r} in {ctx.result.headers}"
            ) from None

    @staticmethod
    def _rows(
        ctx: "EvalContext",
        mode: Optional[str],
        at: Optional[Sequence],
    ) -> list[list]:
        rows = [
            row
            for row in ctx.result.rows
            if (mode is None or row[0] == mode)
            and (at is None or row[1] in at)
        ]
        if not rows:
            raise SpecError(f"no rows for mode={mode!r} at={at!r}")
        return rows

    def _series(
        self,
        ctx: "EvalContext",
        column: str,
        mode: Optional[str],
        at: Optional[Sequence],
        of: Optional[str] = None,
    ) -> list[tuple[object, float]]:
        """``(x, value)`` pairs in sweep order; ratio to ``of`` if set."""
        col = self._col(ctx, column)
        rows = self._rows(ctx, mode, at)
        pairs = [(row[1], float(row[col])) for row in rows]
        if of is None:
            return pairs
        base = {
            row[1]: float(row[col]) for row in self._rows(ctx, of, at)
        }
        ratios = []
        for x, value in pairs:
            if x not in base:
                raise SpecError(f"mode {of!r} has no x={x!r}")
            if base[x] == 0:
                raise SpecError(f"{of}.{column} is 0 at x={x!r}")
            ratios.append((x, value / base[x]))
        return ratios

    @staticmethod
    def _show(pairs: Sequence[tuple[object, float]]) -> str:
        return ", ".join(f"x={x}: {value:g}" for x, value in pairs)


# ----------------------------------------------------------------------
# is_zero — exact-zero (or tolerance-bounded) claims
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IsZero(Expectation):
    kind: str = field(init=False, default="is_zero")
    column: Optional[str] = None
    mode: Optional[str] = None
    at: Optional[tuple] = None
    tol: float = 0.0
    metric: Optional[str] = None
    phase_contains: Optional[str] = None

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        if self.metric is not None:
            return self._eval_metric(ctx)
        assert self.column is not None
        pairs = self._series(ctx, self.column, self.mode, self.at)
        bad = [(x, v) for x, v in pairs if abs(v) > self.tol]
        status = "fail" if bad else "pass"
        return status, f"{self.mode or 'all'}.{self.column}: " + self._show(
            pairs
        )

    def _eval_metric(self, ctx: "EvalContext") -> tuple[str, str]:
        if ctx.metrics is None:
            return "skip", "no metrics collected for this run"
        total, phases = _sum_phase_metric(
            ctx.metrics, self.metric or "", self.phase_contains
        )
        if phases == 0:
            raise SpecError(
                f"no phase label contains {self.phase_contains!r}"
            )
        status = "pass" if abs(total) <= self.tol else "fail"
        return status, (
            f"sum({self.metric}) over {phases} phase(s) = {total:g}"
        )


def is_zero(
    column: Optional[str] = None,
    mode: Optional[str] = None,
    *,
    at: Optional[Sequence] = None,
    tol: float = 0.0,
    metric: Optional[str] = None,
    phase_contains: Optional[str] = None,
    claim: str,
    paper: str = "0",
) -> Expectation:
    """The value is (exactly, or within ``tol`` of) zero.

    Row form: ``column``/``mode``/``at`` select table cells.  Metric
    form: ``metric``/``phase_contains`` sum a registry metric's final
    value over matching phases — skipped when no metrics were taken.
    """
    if (column is None) == (metric is None):
        raise ValueError("pass exactly one of column= or metric=")
    return IsZero(
        claim=claim,
        paper=paper,
        column=column,
        mode=mode,
        at=tuple(at) if at is not None else None,
        tol=tol,
        metric=metric,
        phase_contains=phase_contains,
    )


def _sum_phase_metric(
    metrics: dict, metric: str, phase_contains: Optional[str]
) -> tuple[float, int]:
    """Sum ``metric``'s final values over matching phases of a report."""
    total = 0.0
    matched = 0
    for phase in metrics.get("phases", []):
        label = phase.get("label", "")
        if phase_contains is not None and phase_contains not in label:
            continue
        matched += 1
        for name, value in (phase.get("final") or {}).items():
            if _normalize(name) == metric and isinstance(
                value, (int, float)
            ):
                total += value
    return total, matched


def _normalize(name: str) -> str:
    """Strip the ``#N`` instance-dedup suffixes from a metric name."""
    return ".".join(part.split("#", 1)[0] for part in name.split("."))


# ----------------------------------------------------------------------
# equal — two columns (or one column at two sweep points) agree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Equal(Expectation):
    kind: str = field(init=False, default="equal")
    column: str = ""
    column_b: Optional[str] = None
    mode: Optional[str] = None
    at: Optional[tuple] = None
    between: Optional[tuple] = None
    tol_abs: float = 0.0
    tol_rel: float = 0.0

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        if self.column_b is not None:
            pairs_a = self._series(ctx, self.column, self.mode, self.at)
            pairs_b = self._series(ctx, self.column_b, self.mode, self.at)
            label = f"{self.column} vs {self.column_b}"
        else:
            assert self.between is not None
            x1, x2 = self.between
            pairs_a = self._series(ctx, self.column, self.mode, (x1,))
            pairs_b = self._series(ctx, self.column, self.mode, (x2,))
            label = f"{self.column} at x={x1} vs x={x2}"
        ok = all(
            self._close(va, vb)
            for (_, va), (_, vb) in zip(pairs_a, pairs_b)
        )
        observed = (
            f"{label}: {self._show(pairs_a)} | {self._show(pairs_b)}"
        )
        return ("pass" if ok else "fail"), observed

    def _close(self, a: float, b: float) -> bool:
        return abs(a - b) <= max(
            self.tol_abs, self.tol_rel * max(abs(a), abs(b))
        )


def equal(
    column: str,
    column_b: Optional[str] = None,
    *,
    mode: Optional[str] = None,
    at: Optional[Sequence] = None,
    between: Optional[Sequence] = None,
    tol_abs: float = 0.0,
    tol_rel: float = 0.0,
    claim: str,
    paper: str = "equal",
) -> Expectation:
    """Two columns agree row-wise, or one column agrees at two x's."""
    if (column_b is None) == (between is None):
        raise ValueError("pass exactly one of column_b= or between=")
    return Equal(
        claim=claim,
        paper=paper,
        column=column,
        column_b=column_b,
        mode=mode,
        at=tuple(at) if at is not None else None,
        between=tuple(between) if between is not None else None,
        tol_abs=tol_abs,
        tol_rel=tol_rel,
    )


# ----------------------------------------------------------------------
# grows_with / declines_with — monotone trend over the sweep axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Trend(Expectation):
    kind: str = field(init=False, default="grows_with")
    column: str = ""
    mode: Optional[str] = None
    of: Optional[str] = None
    at: Optional[tuple] = None
    factor: float = 1.0
    slack: float = 0.0
    declines: bool = False

    def __post_init__(self) -> None:
        if self.declines:
            object.__setattr__(self, "kind", "declines_with")

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        pairs = self._series(ctx, self.column, self.mode, self.at, self.of)
        if len(pairs) < 2:
            raise SpecError("need at least two sweep points for a trend")
        first, last = pairs[0][1], pairs[-1][1]
        if self.declines:
            ok = first >= last * self.factor - self.slack
        else:
            ok = last >= first * self.factor - self.slack
        suffix = f" / {self.of}" if self.of else ""
        observed = f"{self.column}{suffix}: {self._show(pairs)}"
        return ("pass" if ok else "fail"), observed


def grows_with(
    column: str,
    mode: Optional[str] = None,
    *,
    of: Optional[str] = None,
    at: Optional[Sequence] = None,
    factor: float = 1.0,
    slack: float = 0.0,
    claim: str,
    paper: str = "grows",
) -> Expectation:
    """Last sweep point ≥ first × ``factor`` − ``slack``.

    With ``of=``, the trend is checked on the ``mode``/``of`` ratio
    (e.g. "strict's relative throughput recovers at larger sizes").
    """
    return Trend(
        claim=claim,
        paper=paper,
        column=column,
        mode=mode,
        of=of,
        at=tuple(at) if at is not None else None,
        factor=factor,
        slack=slack,
    )


def declines_with(
    column: str,
    mode: Optional[str] = None,
    *,
    of: Optional[str] = None,
    at: Optional[Sequence] = None,
    factor: float = 1.0,
    slack: float = 0.0,
    claim: str,
    paper: str = "declines",
) -> Expectation:
    """First sweep point ≥ last × ``factor`` − ``slack`` (mirror verb)."""
    return Trend(
        claim=claim,
        paper=paper,
        column=column,
        mode=mode,
        of=of,
        at=tuple(at) if at is not None else None,
        factor=factor,
        slack=slack,
        declines=True,
    )


# ----------------------------------------------------------------------
# wins — one mode beats another (per point, or on the series extreme)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Wins(Expectation):
    kind: str = field(init=False, default="wins")
    mode: str = ""
    over: str = ""
    column: str = ""
    by: float = 1.0
    at: Optional[tuple] = None
    agg: str = "all"

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        mine = self._series(ctx, self.column, self.mode, self.at)
        their_pairs = self._series(ctx, self.column, self.over, self.at)
        theirs = dict(their_pairs)
        observed = (
            f"{self.mode}.{self.column}: {self._show(mine)} vs "
            f"{self.over}: {self._show(their_pairs)}"
        )
        if self.agg == "max":
            ok = max(v for _, v in mine) > max(theirs.values()) * self.by
            return ("pass" if ok else "fail"), observed
        shared = [(x, v) for x, v in mine if x in theirs]
        if not shared:
            raise SpecError(
                f"modes {self.mode!r}/{self.over!r} share no x values"
            )
        ok = all(v > theirs[x] * self.by for x, v in shared)
        return ("pass" if ok else "fail"), observed


def wins(
    mode: str,
    over: str,
    column: str,
    *,
    by: float = 1.0,
    at: Optional[Sequence] = None,
    agg: str = "all",
    claim: str,
    paper: str = "wins",
) -> Expectation:
    """``mode`` beats ``over``: value > other × ``by`` at each shared x.

    ``agg="max"`` compares the series maxima instead (tail claims like
    "strict's worst tail is 10× off's worst tail").
    """
    if agg not in ("all", "max"):
        raise ValueError(f"agg must be 'all' or 'max', got {agg!r}")
    return Wins(
        claim=claim,
        paper=paper,
        mode=mode,
        over=over,
        column=column,
        by=by,
        at=tuple(at) if at is not None else None,
        agg=agg,
    )


# ----------------------------------------------------------------------
# within_band — absolute or relative bounds (the workhorse verb)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WithinBand(Expectation):
    kind: str = field(init=False, default="within_band")
    column: Optional[str] = None
    mode: Optional[str] = None
    of: Optional[str] = None
    at: Optional[tuple] = None
    lo: Optional[float] = None
    hi: Optional[float] = None
    slack: Optional[float] = None
    hi_min: Optional[float] = None
    derived: Optional[Callable] = None
    label: str = ""

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        if self.derived is not None:
            value = float(self.derived(ctx.result))
            ok = (self.lo is None or value >= self.lo) and (
                self.hi is None or value <= self.hi
            )
            return ("pass" if ok else "fail"), f"{self.label}: {value:g}"
        assert self.column is not None
        if self.of is None:
            pairs = self._series(ctx, self.column, self.mode, self.at)
            ok = all(self._in_abs_band(v) for _, v in pairs)
            observed = f"{self.mode or 'all'}.{self.column}: " + self._show(
                pairs
            )
            return ("pass" if ok else "fail"), observed
        mine = dict(self._series(ctx, self.column, self.mode, self.at))
        base = dict(self._series(ctx, self.column, self.of, self.at))
        shared = [x for x in mine if x in base]
        if not shared:
            raise SpecError(
                f"modes {self.mode!r}/{self.of!r} share no x values"
            )
        ok = all(self._in_rel_band(mine[x], base[x]) for x in shared)
        shown = ", ".join(
            f"x={x}: {mine[x] / base[x]:g}"
            if base[x]
            else f"x={x}: {mine[x]:g} (base 0)"
            for x in shared
        )
        observed = f"{self.mode}.{self.column} / {self.of}: {shown}"
        return ("pass" if ok else "fail"), observed

    def _in_abs_band(self, value: float) -> bool:
        return (self.lo is None or value >= self.lo) and (
            self.hi is None or value <= self.hi
        )

    def _in_rel_band(self, value: float, base: float) -> bool:
        if self.lo is not None and value < base * self.lo:
            return False
        if self.hi is not None:
            bound = base * self.hi
            if self.slack is not None:
                bound = max(bound, base + self.slack)
            if self.hi_min is not None:
                bound = max(bound, self.hi_min)
            if value > bound:
                return False
        return True


def within_band(
    column: Optional[str] = None,
    mode: Optional[str] = None,
    *,
    of: Optional[str] = None,
    at: Optional[Sequence] = None,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    slack: Optional[float] = None,
    hi_min: Optional[float] = None,
    derived: Optional[Callable] = None,
    label: str = "",
    claim: str,
    paper: str = "within band",
) -> Expectation:
    """Value within bounds: absolute, or relative to mode ``of``.

    Relative form checks ``lo·base ≤ v`` and ``v ≤ hi·base`` where the
    upper bound is loosened to ``max(hi·base, base+slack, hi_min)`` when
    those are given (tail claims shaped like "≤ 3× of off, or within
    200 µs of it").  ``derived=`` evaluates a callable of the
    :class:`FigureResult` instead (e.g. a fitted model constant from
    ``result.raw``), named by ``label=``.
    """
    if derived is None and column is None:
        raise ValueError("pass column= or derived=")
    if lo is None and hi is None:
        raise ValueError("at least one of lo=/hi= is required")
    return WithinBand(
        claim=claim,
        paper=paper,
        column=column,
        mode=mode,
        of=of,
        at=tuple(at) if at is not None else None,
        lo=lo,
        hi=hi,
        slack=slack,
        hi_min=hi_min,
        derived=derived,
        label=label or "derived",
    )


# ----------------------------------------------------------------------
# crossover_at — a ratio stays below a threshold until a sweep point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossoverAt(Expectation):
    kind: str = field(init=False, default="crossover_at")
    column: str = ""
    mode: str = ""
    of: str = ""
    threshold: float = 1.0
    after: object = None
    must_cross: bool = True

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        pairs = self._series(ctx, self.column, self.mode, None, self.of)
        below = [
            (x, r) for x, r in pairs if _le_x(x, self.after)
        ]
        above = [(x, r) for x, r in pairs if not _le_x(x, self.after)]
        if not below:
            raise SpecError(f"no sweep points at or before {self.after!r}")
        ok = all(r < self.threshold for _, r in below)
        if self.must_cross:
            ok = ok and any(r >= self.threshold for _, r in above)
        observed = (
            f"{self.mode}.{self.column} / {self.of}: "
            + self._show(pairs)
            + f" (threshold {self.threshold:g} after x={self.after!r})"
        )
        return ("pass" if ok else "fail"), observed


def _le_x(x: object, bound: object) -> bool:
    try:
        return x <= bound  # type: ignore[operator]
    except TypeError:
        raise SpecError(
            f"cannot order x={x!r} against after={bound!r}"
        ) from None


def crossover_at(
    column: str,
    mode: str,
    *,
    of: str,
    threshold: float,
    after,
    must_cross: bool = True,
    claim: str,
    paper: str = "crossover",
) -> Expectation:
    """The ``mode``/``of`` ratio stays < ``threshold`` up to ``after``.

    With ``must_cross=True`` (default) the ratio must also rise to
    ``threshold`` or above at some later sweep point — pinning *where*
    an effect fades, not just that it exists.
    """
    return CrossoverAt(
        claim=claim,
        paper=paper,
        column=column,
        mode=mode,
        of=of,
        threshold=threshold,
        after=after,
        must_cross=must_cross,
    )


# ----------------------------------------------------------------------
# largest_class — one column dominates its siblings (m3 > m1, m2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LargestClass(Expectation):
    kind: str = field(init=False, default="largest_class")
    column: str = ""
    among: tuple = ()
    mode: Optional[str] = None
    at: Optional[tuple] = None

    def _eval(self, ctx: "EvalContext") -> tuple[str, str]:
        rows = self._rows(ctx, self.mode, self.at)
        col = self._col(ctx, self.column)
        others = [
            self._col(ctx, name)
            for name in self.among
            if name != self.column
        ]
        ok = all(
            float(row[col]) >= max(float(row[i]) for i in others)
            for row in rows
        )
        shown = ", ".join(
            "x={}: {}".format(
                row[1],
                "/".join(f"{float(row[i]):g}" for i in [col] + others),
            )
            for row in rows
        )
        observed = (
            f"{self.column} vs {[n for n in self.among if n != self.column]}"
            f": {shown}"
        )
        return ("pass" if ok else "fail"), observed


def largest_class(
    column: str,
    *,
    among: Sequence[str],
    mode: Optional[str] = None,
    at: Optional[Sequence] = None,
    claim: str,
    paper: str = "largest",
) -> Expectation:
    """``column`` ≥ every other column in ``among`` at each point."""
    if column not in among:
        raise ValueError(f"{column!r} must be one of among={among!r}")
    return LargestClass(
        claim=claim,
        paper=paper,
        column=column,
        among=tuple(among),
        mode=mode,
        at=tuple(at) if at is not None else None,
    )

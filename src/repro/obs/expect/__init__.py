"""Declarative paper-claims engine (the expectation vocabulary).

The paper's headline results are *shapes* — who wins, what is zero,
what grows with what, where the crossovers sit.  This package turns
each such claim into a first-class, machine-readable object:

* :mod:`repro.obs.expect.vocabulary` — the eight expectation verbs
  (``is_zero``, ``equal``, ``grows_with``, ``declines_with``, ``wins``,
  ``within_band``, ``crossover_at``, ``largest_class``);
* :mod:`repro.obs.expectations` — one spec file per paper figure,
  each a plain list of vocabulary objects;
* :mod:`repro.obs.expect.engine` — evaluates a spec against a
  :class:`repro.experiments.FigureResult` (and, optionally, the
  final-phase metrics of a :class:`repro.obs.MetricsRegistry`);
* :mod:`repro.obs.expect.reproduce` — the ``repro reproduce`` driver:
  runs figures, evaluates their specs, emits ``REPORT.md`` and a
  provenance-stamped ``report.json``;
* :mod:`repro.obs.expect.diffing` — the ``repro diff`` driver:
  differential regression gating between two report/bench documents.

The benchmark suite asserts through the same engine, so the tests,
the generated report and CI cannot disagree about what the paper
claims or whether the reproduction meets it.
"""

from .engine import EvalContext, FigureEvaluation, FigureSpec, evaluate_figure
from .vocabulary import (
    Expectation,
    Outcome,
    crossover_at,
    declines_with,
    equal,
    grows_with,
    is_zero,
    largest_class,
    within_band,
    wins,
)

__all__ = [
    "EvalContext",
    "Expectation",
    "FigureEvaluation",
    "FigureSpec",
    "Outcome",
    "crossover_at",
    "declines_with",
    "equal",
    "evaluate_figure",
    "grows_with",
    "is_zero",
    "largest_class",
    "within_band",
    "wins",
]

"""Spec evaluation: a figure's expectations against its reproduced rows.

A :class:`FigureSpec` is one figure's paper claims; evaluating it
against a :class:`~repro.experiments.FigureResult` (plus, optionally,
the metrics document of the run's :class:`~repro.obs.MetricsRegistry`)
yields a :class:`FigureEvaluation` — the per-claim ✓/✗ table behind
both the benchmark suite's asserts and the generated ``REPORT.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

from .vocabulary import Expectation, Outcome

if TYPE_CHECKING:  # pragma: no cover
    from ...experiments.figures import FigureResult

__all__ = [
    "EvalContext",
    "FigureSpec",
    "FigureEvaluation",
    "evaluate_figure",
    "available_specs",
]


@dataclass
class EvalContext:
    """What an expectation may look at: the rows, and final metrics."""

    result: "FigureResult"
    metrics: Optional[dict] = None  # a MetricsRegistry.report() document


@dataclass(frozen=True)
class FigureSpec:
    """One figure's claims: the CLI key, a title, and the verb list."""

    figure: str  # CLI figure key, e.g. "fig2"
    title: str
    expectations: tuple[Expectation, ...]

    def digest_parts(self) -> list[str]:
        """Stable strings describing the spec (for the config hash)."""
        return [self.figure, self.title] + [
            f"{e.kind}:{e.claim}" for e in self.expectations
        ]


@dataclass
class FigureEvaluation:
    """Every claim of one figure, evaluated."""

    figure: str
    title: str
    outcomes: list[Outcome]

    @property
    def failures(self) -> list[Outcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def counts(self) -> dict[str, int]:
        return {
            "claims": len(self.outcomes),
            "passed": sum(o.status == "pass" for o in self.outcomes),
            "failed": sum(o.status == "fail" for o in self.outcomes),
            "skipped": sum(o.status == "skip" for o in self.outcomes),
        }

    def format(self) -> str:
        """Plain-text claim-by-claim block (benchmark output)."""
        lines = [f"-- claims: {self.figure} ({self.title}) --"]
        lines.extend(o.describe() for o in self.outcomes)
        c = self.counts()
        lines.append(
            f"   {c['passed']}/{c['claims']} claims pass"
            + (f", {c['skipped']} skipped" if c["skipped"] else "")
        )
        return "\n".join(lines)

    def to_claims(self) -> list[dict]:
        """JSON-ready per-claim records for ``report.json``."""
        return [
            {
                "kind": o.expectation.kind,
                "claim": o.expectation.claim,
                "paper": o.expectation.paper,
                "observed": o.observed,
                "status": o.status,
            }
            for o in self.outcomes
        ]


def _specs() -> dict[str, FigureSpec]:
    # Imported lazily: the spec files import the vocabulary from this
    # package, so a module-level import would be circular.
    from ..expectations import SPECS

    return SPECS


def available_specs() -> list[str]:
    """The figure keys that have expectation spec files."""
    return list(_specs())


def evaluate_figure(
    spec: Union[str, FigureSpec],
    result: "FigureResult",
    metrics: Optional[dict] = None,
    only: Optional[Sequence[str]] = None,
) -> FigureEvaluation:
    """Evaluate a figure's spec (by key or directly) against a result.

    ``only`` restricts evaluation to expectations whose claim text
    contains any of the given substrings (used by sub-sweep tests).
    """
    if isinstance(spec, str):
        try:
            spec = _specs()[spec]
        except KeyError:
            raise KeyError(
                f"no expectation spec for {spec!r}; "
                f"available: {available_specs()}"
            ) from None
    ctx = EvalContext(result=result, metrics=metrics)
    expectations = spec.expectations
    if only is not None:
        expectations = tuple(
            e
            for e in expectations
            if any(token in e.claim for token in only)
        )
    outcomes = [e.evaluate(ctx) for e in expectations]
    return FigureEvaluation(spec.figure, spec.title, outcomes)

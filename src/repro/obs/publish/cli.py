"""``repro publish`` — render the publication gallery to a directory.

Usage::

    repro publish out/ [--figures fig2,fig9] [--style paper|arxiv]
                       [--format svg|png|pdf] [--from-report PATH]
                       [--full] [--seed N] [--jobs N] [--chunk N]
                       [--history PATH] [--trace PATH]

Output layout (all under the positional ``outdir``)::

    index.html          browsable gallery (stdlib-templated)
    report.json         the underlying report document, byte-identical
                        to `repro reproduce` output at any --jobs
    fig*.svg|png|pdf    one publication figure per reproduced figure
    bench_trend.*       bench-history trend chart (when history exists)
    trace_digest.*      span-trace digest figure
    trace_digest.json   the digest's stats + critical-path table

Backend selection is format-driven: ``svg`` (the default) uses the
dependency-free builtin renderer so publish works in the bare tier-1
environment; ``png``/``pdf`` require matplotlib (the ``publish``
extra) and exit 2 with an install hint when it is missing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Optional

from ..bench import DEFAULT_HISTORY_PATH
from .bench_trend import trend_from_history_file
from .datasource import (
    generate_report,
    load_report,
    record_trace,
    resolve_scale,
)
from .figdata import FigureArtifact, build_figure_artifact
from .figspecs import PUBLISH_SPECS
from .htmlindex import render_index
from .mplbackend import have_matplotlib
from .style import STYLES
from .svgbackend import render_figure_svg
from .tracedigest import (
    CRITICAL_PATH_HEADERS,
    critical_path_rows,
    digest_artifact,
    digest_trace,
    load_trace,
)

__all__ = ["main", "build_parser"]

INSTALL_HINT = (
    "matplotlib is required for --format {fmt}; install the publish "
    "extra:  pip install 'repro[publish]'  (or use --format svg, "
    "which needs no dependencies)"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro publish",
        description=(
            "Render publication figures, the bench-history trend and "
            "a trace digest into a browsable HTML gallery."
        ),
    )
    parser.add_argument(
        "outdir", help="output directory (created if missing)"
    )
    parser.add_argument(
        "--figures",
        default=None,
        help=(
            "comma-separated figure keys (default: all of "
            + ",".join(PUBLISH_SPECS)
            + ")"
        ),
    )
    parser.add_argument(
        "--style", choices=sorted(STYLES), default="paper",
        help="publication style preset (default: paper)",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("svg", "png", "pdf"),
        default="svg",
        help=(
            "figure file format; svg uses the builtin renderer, "
            "png/pdf need matplotlib (default: svg)"
        ),
    )
    parser.add_argument(
        "--from-report", default=None, metavar="PATH",
        help=(
            "render from an existing report.json instead of running "
            "the sweeps"
        ),
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run sweeps at full scale (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="sweep RNG seed (default: 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points across N worker processes",
    )
    parser.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="points per worker dispatch (with --jobs)",
    )
    parser.add_argument(
        "--history", default=DEFAULT_HISTORY_PATH, metavar="PATH",
        help=(
            "bench history JSONL for the trend chart "
            f"(default: {DEFAULT_HISTORY_PATH})"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "digest an existing Chrome trace (from `repro report "
            "--trace`); default records a fresh fig12 quick trace"
        ),
    )
    return parser


def _resolve_renderer(
    fmt: str,
) -> Optional[Callable[[FigureArtifact, str, str], dict]]:
    """The render function for a format, or None when unavailable."""
    if fmt == "svg":
        return render_figure_svg
    if not have_matplotlib():
        return None
    from .mplbackend import render_figure_mpl

    return render_figure_mpl


def main(raw: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(raw)
    fmt = args.fmt
    renderer = _resolve_renderer(fmt)
    if renderer is None:
        print(INSTALL_HINT.format(fmt=fmt), file=sys.stderr)
        return 2
    backend = "builtin-svg" if fmt == "svg" else "matplotlib"
    if args.figures is None:
        requested = list(PUBLISH_SPECS)
    else:
        requested = [
            name.strip()
            for name in args.figures.split(",")
            if name.strip()
        ]
        unknown = [n for n in requested if n not in PUBLISH_SPECS]
        if unknown:
            print(
                f"unknown figure(s) {unknown}; "
                f"available: {', '.join(PUBLISH_SPECS)}",
                file=sys.stderr,
            )
            return 2

    os.makedirs(args.outdir, exist_ok=True)

    # 1. The report document: load or regenerate (the shared
    # collect_sections loop keeps jobs-N data byte-identical).
    if args.from_report is not None:
        try:
            report = load_report(args.from_report)
        except (OSError, ValueError) as exc:
            print(f"cannot use --from-report: {exc}", file=sys.stderr)
            return 2
        print(f"report: loaded {args.from_report}")
    else:
        scale = resolve_scale(args.full)
        report = generate_report(
            requested,
            scale=scale,
            seed=args.seed,
            jobs=args.jobs,
            chunk=args.chunk,
            echo=lambda line: None,
        )
        summary = report["summary"]
        print(
            f"report: ran {len(requested)} figures at {scale.name} "
            f"scale ({summary['passed']}/{summary['claims']} claims "
            "pass)"
        )
    report_path = os.path.join(args.outdir, "report.json")
    with open(report_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    sections = {
        section["figure"]: section
        for section in report.get("figures", [])
    }
    missing = [n for n in requested if n not in sections]
    if missing:
        print(
            f"note: {', '.join(missing)} not in the report document; "
            "skipped",
        )

    # 2. Figure renderers (paper overlays + badges via figdata).
    cards: list[tuple[dict, FigureArtifact, str]] = []
    for name in requested:
        if name not in sections:
            continue
        artifact = build_figure_artifact(
            sections[name], PUBLISH_SPECS[name]
        )
        filename = f"{name}.{fmt}"
        info = renderer(
            artifact, args.style, os.path.join(args.outdir, filename)
        )
        counts = artifact.badge_counts()
        print(
            f"figure: {filename} ({info['panels']} panels, "
            f"{counts['pass']}✓/{counts['fail']}✗)"
        )
        cards.append((sections[name], artifact, filename))

    # 3. Bench-history trend.
    bench_image: Optional[str] = None
    bench_rows = 0
    trend = trend_from_history_file(args.history)
    if trend is not None:
        bench_rows = len(trend.panels[0].xticklabels or [])
        bench_image = f"bench_trend.{fmt}"
        renderer(
            trend, args.style, os.path.join(args.outdir, bench_image)
        )
        print(
            f"bench:  {bench_image} ({bench_rows} runs from "
            f"{args.history})"
        )
    else:
        print(
            f"bench:  skipped (no usable history at {args.history})"
        )

    # 4. Trace digest.
    if args.trace is not None:
        try:
            trace_doc = load_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"cannot use --trace: {exc}", file=sys.stderr)
            return 2
    else:
        trace_doc = record_trace(seed=args.seed)
    digest = digest_trace(trace_doc)
    # The raw trace can run to tens of MB; publish only the digest.
    digest_json = os.path.join(args.outdir, "trace_digest.json")
    with open(digest_json, "w") as handle:
        json.dump(
            {
                "schema": "repro.trace-digest/1",
                "span_count": digest.span_count,
                "total_us": round(digest.total_us, 1),
                "instant_count": digest.instant_count,
                "tracks": digest.tracks,
                "critical_path": {
                    "headers": CRITICAL_PATH_HEADERS,
                    "rows": critical_path_rows(digest),
                },
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    trace_image = f"trace_digest.{fmt}"
    renderer(
        digest_artifact(digest),
        args.style,
        os.path.join(args.outdir, trace_image),
    )
    print(
        f"trace:  {trace_image} ({digest.span_count} spans, "
        f"{len(digest.kinds)} kinds)"
    )

    # 5. The index that ties it together.
    page = render_index(
        report=report,
        cards=cards,
        bench_image=bench_image,
        bench_rows=bench_rows,
        trace_image=trace_image,
        trace_digest=digest,
        style_name=args.style,
        fmt=fmt,
        backend=backend,
    )
    index_path = os.path.join(args.outdir, "index.html")
    with open(index_path, "w") as handle:
        handle.write(page)
    print(f"index:  {index_path}")
    return 0

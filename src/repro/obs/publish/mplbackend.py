"""Matplotlib (Agg) renderer for publication artifacts.

This backend is optional: matplotlib ships via the ``publish`` extra
(``pip install 'repro[publish]'``) and is the only way to emit
``png``/``pdf`` output.  :func:`have_matplotlib` is the gate — the CLI
checks it before dispatching and exits 2 with an install hint when the
user asks for a raster/vector format without the dependency.  All
imports happen lazily inside functions so merely importing the publish
package never touches matplotlib.

The drawing mirrors :mod:`repro.obs.publish.svgbackend` — same
palette, same panel layout, same ours-solid / paper-dashed encoding —
so the two backends are interchangeable in the HTML index.
"""

from __future__ import annotations

from .figdata import FigureArtifact, PanelData
from .style import (
    FAIL_COLOR,
    GRID,
    PASS_COLOR,
    SKIP_COLOR,
    STYLES,
    SURFACE,
    TEXT,
    TEXT_MUTED,
    WARN_COLOR,
)

__all__ = ["have_matplotlib", "render_figure_mpl"]


def have_matplotlib() -> bool:
    """True when matplotlib is importable (the ``publish`` extra)."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _style_axes(ax, panel: PanelData, font_size: int) -> None:
    ax.set_facecolor(SURFACE)
    for side in ("top", "right"):
        ax.spines[side].set_visible(False)
    for side in ("left", "bottom"):
        ax.spines[side].set_color(GRID)
    ax.tick_params(colors=TEXT_MUTED, labelsize=font_size - 2)
    ax.grid(True, color=GRID, linewidth=0.8)
    ax.set_axisbelow(True)
    ax.set_xlabel(panel.xlabel, fontsize=font_size - 1,
                  color=TEXT_MUTED)
    ax.set_ylabel(panel.ylabel, fontsize=font_size - 1,
                  color=TEXT_MUTED)


def _draw_panel(ax, panel: PanelData, font_size: int) -> None:
    if panel.kind == "bars":
        labels = [bar.label for bar in panel.bars]
        xs = range(len(panel.bars))
        for x, bar in zip(xs, panel.bars):
            ax.bar(
                x, bar.value, width=0.62, color=bar.color,
                edgecolor=SURFACE, linewidth=1.5, zorder=3,
            )
            ax.annotate(
                f"{bar.value:g}", (x, bar.value),
                textcoords="offset points", xytext=(0, 3),
                ha="center", fontsize=font_size - 2, color=TEXT,
            )
            if bar.ref is not None:
                ax.hlines(
                    bar.ref, x - 0.42, x + 0.42, colors=TEXT,
                    linestyles=(0, (5, 3)), linewidth=1.4, zorder=4,
                )
        ax.set_xticks(list(xs), labels)
        if panel.logy:
            ax.set_yscale("log")
        return
    for series in panel.series:
        points = sorted(series.points)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        if series.kind == "paper":
            ax.plot(
                xs, ys, color=series.color, linewidth=1.8,
                linestyle=(0, (6, 4)), marker="s", markersize=5,
                markerfacecolor=SURFACE,
                markeredgecolor=series.color, label=series.label,
                zorder=3,
            )
        else:
            ax.plot(
                xs, ys, color=series.color, linewidth=2.0,
                marker="o", markersize=5,
                markeredgecolor=SURFACE, markeredgewidth=0.8,
                label=series.label, zorder=4,
            )
    if panel.logx:
        ax.set_xscale("log", base=2)
        data_xs = sorted(
            {x for series in panel.series for x, _ in series.points}
        )
        if 0 < len(data_xs) <= 7:
            ax.set_xticks(data_xs)
            ax.set_xticklabels([_si(x) for x in data_xs])
            ax.minorticks_off()
    if panel.logy:
        ax.set_yscale("log")
    else:
        ax.set_ylim(bottom=0)
    if panel.xticklabels is not None:
        data_xs = sorted(
            {x for series in panel.series for x, _ in series.points}
        )
        ax.set_xticks(data_xs[: len(panel.xticklabels)])
        ax.set_xticklabels(
            panel.xticklabels, rotation=30, ha="right",
        )


def _si(value: float) -> str:
    if value >= 1024 and (value / 1024).is_integer():
        if value >= 1024 * 1024 and (value / 1024 / 1024).is_integer():
            return f"{int(value / 1024 / 1024)}M"
        return f"{int(value / 1024)}K"
    return f"{value:g}"


def render_figure_mpl(
    artifact: FigureArtifact, style_name: str, path: str
) -> dict:
    """Render one artifact with matplotlib/Agg; returns counts."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    style = STYLES[style_name]
    n_panels = max(len(artifact.panels), 1)
    fig, axes = plt.subplots(
        1,
        n_panels,
        figsize=(style.panel_width * n_panels, style.panel_height),
        squeeze=False,
    )
    fig.patch.set_facecolor(SURFACE)
    counts = {"panels": 0, "series": 0, "bars": 0,
              "badges": len(artifact.badges)}
    with plt.rc_context(
        {
            "font.family": style.font_family,
            "font.size": style.font_size,
        }
    ):
        for ax, panel in zip(axes[0], artifact.panels):
            _style_axes(ax, panel, style.font_size)
            _draw_panel(ax, panel, style.font_size)
            counts["panels"] += 1
            counts["series"] += len(panel.series)
            counts["bars"] += len(panel.bars)
        handles, labels = axes[0][0].get_legend_handles_labels()
        if handles:
            fig.legend(
                handles,
                labels,
                loc="lower center",
                ncol=min(len(labels), 5),
                frameon=False,
                fontsize=style.font_size - 2,
                bbox_to_anchor=(0.5, -0.02),
            )
        badge = _badge_text(artifact)
        title = f"{artifact.figure_id} — {artifact.title}"
        fig.suptitle(
            title, fontsize=style.font_size + 1, color=TEXT, x=0.01,
            ha="left",
        )
        if badge:
            fig.text(
                0.99, 0.99, badge[0], fontsize=style.font_size - 2,
                color=badge[1], ha="right", va="top",
            )
        if artifact.truncated:
            names = ", ".join(artifact.truncated[:3])
            fig.text(
                0.01, 0.0,
                f"⚠ series truncated at sample cap: {names}",
                fontsize=style.font_size - 2, color=WARN_COLOR,
                ha="left", va="bottom",
            )
        fig.tight_layout(rect=(0, 0.06, 1, 0.93))
        fig.savefig(
            path, dpi=style.save_dpi, facecolor=SURFACE,
            bbox_inches="tight",
        )
    plt.close(fig)
    return counts


def _badge_text(artifact: FigureArtifact):
    if not artifact.badges:
        return None
    counts = artifact.badge_counts()
    if counts["fail"]:
        return (
            f"✗ {counts['fail']} fail / {counts['pass']} pass",
            FAIL_COLOR,
        )
    if counts["pass"]:
        suffix = (
            f" ({counts['skip']} skipped)" if counts["skip"] else ""
        )
        return (f"✓ {counts['pass']} pass{suffix}", PASS_COLOR)
    return (f"– {counts['skip']} skipped", SKIP_COLOR)

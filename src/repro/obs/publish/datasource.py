"""Where publish gets its data: report documents and trace files.

The publish pipeline never computes sweep data itself.  It either
loads an existing ``report.json`` (``--from-report``, the CI path) or
generates one through the same
:func:`repro.obs.expect.reproduce.collect_sections` loop that
``repro reproduce`` uses — so the data behind a published figure is
byte-identical to the gated report at any ``--jobs``.

The trace digest likewise prefers a ``--trace`` file from a previous
``repro report`` run; without one, :func:`record_trace` records a
fresh deterministic trace (Fig 12 at quick scale, serial — spans
cannot merge across processes).
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ...experiments.settings import FULL, QUICK, RunScale
from ..hooks import observed
from ..registry import MetricsRegistry
from ..tracer import SpanTracer
from ..expect.reproduce import (
    REPORT_SCHEMA,
    _runner_kwargs,
    collect_sections,
    default_runners,
    provenance,
    report_doc,
)

__all__ = [
    "load_report",
    "generate_report",
    "record_trace",
    "resolve_scale",
]

# The figure recorded for the default trace digest: the Fig 12
# ablation is the cheapest sweep that still exercises every
# protection-mode code path.
TRACE_FIGURE = "fig12"


def resolve_scale(full: bool) -> RunScale:
    return FULL if full else QUICK


def load_report(path: str) -> dict:
    """Load and validate an existing ``report.json`` document."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    schema = doc.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} != {REPORT_SCHEMA!r} "
            "(regenerate with `repro reproduce`)"
        )
    for key in ("provenance", "figures", "summary"):
        if key not in doc:
            raise ValueError(f"{path}: missing {key!r}")
    return doc


def generate_report(
    figures: list[str],
    *,
    scale: RunScale,
    seed: int = 1,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the figure sweeps and build a report document in memory."""
    from ..expectations import SPECS

    sections = collect_sections(
        figures,
        scale=scale,
        seed=seed,
        jobs=jobs,
        chunk=chunk,
        echo=echo,
    )
    manifest = provenance(figures, scale, seed, SPECS)
    return report_doc(manifest, sections)


def record_trace(seed: int = 1) -> dict:
    """Record a deterministic span trace (Fig 12, quick, serial).

    Returns the Chrome-trace document the digest consumes; callers
    that want the raw file write ``doc`` themselves.  Serial by
    design: spans are per-process and cannot merge across a pool.
    """
    runner = default_runners()[TRACE_FIGURE]
    registry = MetricsRegistry(tracer=SpanTracer())
    with observed(registry):
        runner(**_runner_kwargs(runner, QUICK, None, seed))
    assert registry.tracer is not None
    return registry.tracer.to_dict()

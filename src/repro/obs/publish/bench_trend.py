"""Bench-history trend view: throughput per benchmark over commits.

``repro bench`` appends one provenance-stamped row per run to the
committed ``bench_history.jsonl`` (see :mod:`repro.obs.bench`).  This
module turns those rows into a :class:`FigureArtifact` — one line per
benchmark of ``events_per_wall_s`` over run index, with short git shas
as tick labels — so regressions are visible as a dip in the chart
rather than a diff in a JSON file.
"""

from __future__ import annotations

from ..bench import load_history
from .figdata import FigureArtifact, PanelData, Series
from .style import series_color

__all__ = ["trend_artifact", "trend_from_history_file"]


def _short_sha(row: dict) -> str:
    sha = str(row.get("git_sha", "") or "unknown")
    return sha[:8] if sha != "unknown" else sha


def trend_artifact(rows: list[dict]) -> FigureArtifact:
    """Build the trend figure from parsed history rows.

    Rows are plotted in file order (append-only history is already
    chronological); benchmarks are sorted by name so colors are stable
    across regenerations.
    """
    names: list[str] = sorted(
        {
            name
            for row in rows
            for name in row.get("benchmarks", {})
        }
    )
    panel = PanelData(
        ylabel="events / wall second",
        xlabel="bench run (git sha)",
        xticklabels=[_short_sha(row) for row in rows],
    )
    for i, name in enumerate(names):
        points: list[tuple[float, float]] = []
        for x, row in enumerate(rows):
            bench = row.get("benchmarks", {}).get(name)
            if not isinstance(bench, dict):
                continue
            rate = bench.get("events_per_wall_s")
            if isinstance(rate, (int, float)) and not isinstance(
                rate, bool
            ):
                points.append((float(x), float(rate)))
        if points:
            panel.series.append(
                Series(
                    label=name,
                    points=points,
                    color=series_color(name, i),
                )
            )
    scales = sorted(
        {str(row.get("scale", "?")) for row in rows}
    )
    footnote = (
        f"{len(rows)} bench runs; scale(s): {', '.join(scales)}; "
        "simulated-clock event throughput (higher is better)"
    )
    return FigureArtifact(
        name="bench_trend",
        figure_id="Bench trend",
        title="events/s per benchmark across committed bench runs",
        panels=[panel],
        footnote=footnote,
    )


def trend_from_history_file(path: str) -> FigureArtifact | None:
    """Load ``bench_history.jsonl`` and build the trend figure.

    Returns ``None`` when the history has no usable rows (fresh
    checkout without the seed file) so the caller can skip the section
    instead of rendering an empty chart.
    """
    rows = load_history(path)
    if not rows:
        return None
    return trend_artifact(rows)

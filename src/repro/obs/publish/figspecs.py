"""What each published figure plots: panel layouts per CLI figure key.

The report document carries every reproduced table; a ``PublishSpec``
says which columns become panels, what the x axis means, and whether
the figure is a sweep (lines over x) or a single-x mode comparison
(bars per mode, like the Fig 12 ablation).  The specs are data, so the
renderers stay generic and a new figure costs one entry here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PanelSpec", "PublishSpec", "PUBLISH_SPECS"]


@dataclass(frozen=True)
class PanelSpec:
    """One panel: a y column from the figure's table."""

    y: str  # column header in the figure's table
    ylabel: str
    logy: bool = False


@dataclass(frozen=True)
class PublishSpec:
    """How one figure renders: axes, panels, and series source."""

    figure: str  # CLI figure key ("fig2", ...)
    xlabel: str
    panels: tuple[PanelSpec, ...]
    logx: bool = False
    # Single-x figures (Fig 12): one bar per mode instead of lines.
    bars_by_mode: bool = False
    # Mode-less figures (the model fit): named columns become series,
    # with x taken from the first table column.
    column_series: tuple[str, ...] = field(default_factory=tuple)
    # Columns plotted as paper-reference series (dashed) rather than
    # as our curves; only meaningful with ``column_series``.
    reference_columns: tuple[str, ...] = field(default_factory=tuple)


_GBPS = PanelSpec("gbps", "throughput (Gbps)")

PUBLISH_SPECS: dict[str, PublishSpec] = {
    "fig2": PublishSpec(
        figure="fig2",
        xlabel="iperf flows",
        panels=(
            _GBPS,
            PanelSpec("iotlb/pg", "IOTLB misses / page"),
            PanelSpec("m3/pg", "PTcache L3 misses / page"),
        ),
    ),
    "fig3": PublishSpec(
        figure="fig3",
        xlabel="Rx ring size (descriptors)",
        logx=True,
        panels=(
            _GBPS,
            PanelSpec("iotlb/pg", "IOTLB misses / page"),
            PanelSpec("m3/pg", "PTcache L3 misses / page"),
        ),
    ),
    "model": PublishSpec(
        figure="model",
        xlabel="iperf flows",
        panels=(PanelSpec("gbps", "throughput (Gbps)"),),
        column_series=("measured_gbps", "refit_model_gbps"),
        reference_columns=("paper_model_gbps",),
    ),
    "fig7": PublishSpec(
        figure="fig7",
        xlabel="iperf flows",
        panels=(
            _GBPS,
            PanelSpec("iotlb/pg", "IOTLB misses / page"),
            PanelSpec("m3/pg", "PTcache L3 misses / page"),
        ),
    ),
    "fig8": PublishSpec(
        figure="fig8",
        xlabel="Rx ring size (descriptors)",
        logx=True,
        panels=(
            _GBPS,
            PanelSpec("m3/pg", "PTcache L3 misses / page"),
        ),
    ),
    "fig9": PublishSpec(
        figure="fig9",
        xlabel="RPC size (bytes)",
        logx=True,
        panels=(
            PanelSpec("p99", "RPC p99 latency (us)", logy=True),
            PanelSpec("p99.9", "RPC p99.9 latency (us)", logy=True),
        ),
    ),
    "fig10": PublishSpec(
        figure="fig10",
        xlabel="cores per direction",
        panels=(
            PanelSpec("rx_gbps", "Rx throughput (Gbps)"),
            PanelSpec("tx_gbps", "Tx throughput (Gbps)"),
        ),
    ),
    "fig11a": PublishSpec(
        figure="fig11a",
        xlabel="Redis value size (bytes)",
        logx=True,
        panels=(
            _GBPS,
            PanelSpec("iotlb/pg", "IOTLB misses / page"),
        ),
    ),
    "fig11b": PublishSpec(
        figure="fig11b",
        xlabel="Nginx page size (bytes)",
        logx=True,
        panels=(_GBPS,),
    ),
    "fig11c": PublishSpec(
        figure="fig11c",
        xlabel="SPDK block size (bytes)",
        logx=True,
        panels=(
            _GBPS,
            PanelSpec("iotlb/pg", "IOTLB misses / page"),
        ),
    ),
    "fig12": PublishSpec(
        figure="fig12",
        xlabel="configuration",
        bars_by_mode=True,
        panels=(
            _GBPS,
            PanelSpec("l3/pg", "PTcache L3 misses / page"),
        ),
    ),
}

"""Report sections -> renderable figure data, backend-independent.

The renderers draw a :class:`FigureArtifact` — series, bars, badges,
truncation markers — and never look at report documents or expectation
specs directly.  This module is the only place the three inputs meet:

* the figure's reproduced table (one ``figures[]`` section of a
  ``report.json`` document);
* its :class:`~repro.obs.publish.figspecs.PublishSpec` (which columns
  become panels);
* the paper's reference curves from
  :func:`repro.obs.expectations.reference_curves`.

Everything here is pure and deterministic, so the tests can assert
series/badge counts without rendering a single pixel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..expectations import reference_curves
from .figspecs import PublishSpec
from .style import series_color

__all__ = [
    "Series",
    "Bar",
    "PanelData",
    "Badge",
    "FigureArtifact",
    "build_figure_artifact",
]


@dataclass
class Series:
    """One plotted line: points in data space plus identity."""

    label: str
    points: list[tuple[float, float]]
    color: str
    kind: str = "ours"  # "ours" | "paper"


@dataclass
class Bar:
    """One bar of a mode-comparison panel (optionally with a paper
    reference level drawn as a dashed marker)."""

    label: str
    value: float
    color: str
    ref: Optional[float] = None


@dataclass
class PanelData:
    """One panel: either line series over x, or labeled bars."""

    ylabel: str
    xlabel: str
    logx: bool = False
    logy: bool = False
    kind: str = "lines"  # "lines" | "bars"
    series: list[Series] = field(default_factory=list)
    bars: list[Bar] = field(default_factory=list)
    # Optional x tick labels (bench trend: short git shas).
    xticklabels: Optional[list[str]] = None


@dataclass
class Badge:
    """One claim verdict rendered as a colored pass/fail chip."""

    status: str  # "pass" | "fail" | "skip"
    claim: str
    observed: str = ""

    @property
    def symbol(self) -> str:
        return {"pass": "✓", "fail": "✗", "skip": "–"}[
            self.status
        ]


@dataclass
class FigureArtifact:
    """Everything a backend needs to draw one output file."""

    name: str  # output file stem ("fig2", "bench_trend", ...)
    figure_id: str
    title: str
    panels: list[PanelData]
    badges: list[Badge] = field(default_factory=list)
    truncated: list[str] = field(default_factory=list)
    footnote: str = ""

    def badge_counts(self) -> dict[str, int]:
        return {
            "pass": sum(b.status == "pass" for b in self.badges),
            "fail": sum(b.status == "fail" for b in self.badges),
            "skip": sum(b.status == "skip" for b in self.badges),
        }


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _column_index(headers: list, column: str) -> Optional[int]:
    try:
        return headers.index(column)
    except ValueError:
        return None


def _modes_in_order(rows: list) -> list[str]:
    modes: list[str] = []
    for row in rows:
        mode = str(row[0])
        if mode not in modes:
            modes.append(mode)
    return modes


def _line_panel(
    section: dict,
    spec: PublishSpec,
    panel_spec,
    reference: dict,
) -> PanelData:
    headers = section.get("headers", [])
    rows = section.get("rows", [])
    panel = PanelData(
        ylabel=panel_spec.ylabel,
        xlabel=spec.xlabel,
        logx=spec.logx,
        logy=panel_spec.logy,
    )
    if spec.column_series:
        # Mode-less table: selected columns become the series and the
        # first column is x (the model figure's flows sweep).
        for i, column in enumerate(
            spec.column_series + spec.reference_columns
        ):
            c_idx = _column_index(headers, column)
            if c_idx is None:
                continue
            points = []
            for row in rows:
                x = _as_float(row[0])
                y = _as_float(row[c_idx])
                if x is not None and y is not None:
                    points.append((x, y))
            if points:
                is_ref = column in spec.reference_columns
                panel.series.append(
                    Series(
                        label=column.replace("_gbps", "")
                        + (" (paper)" if is_ref else ""),
                        points=points,
                        color=series_color(column, i),
                        kind="paper" if is_ref else "ours",
                    )
                )
        return panel
    y_idx = _column_index(headers, panel_spec.y)
    if y_idx is None:
        return panel
    for i, mode in enumerate(_modes_in_order(rows)):
        points = []
        for row in rows:
            if str(row[0]) != mode:
                continue
            x = _as_float(row[1])
            y = _as_float(row[y_idx])
            if x is not None and y is not None:
                points.append((x, y))
        if points:
            panel.series.append(
                Series(
                    label=mode,
                    points=points,
                    color=series_color(mode, i),
                )
            )
    for i, (mode, points) in enumerate(
        sorted(reference.get(panel_spec.y, {}).items())
    ):
        numeric = [
            (float(x), float(y))
            for x, y in points
            if _as_float(x) is not None and _as_float(y) is not None
        ]
        if numeric:
            panel.series.append(
                Series(
                    label=f"{mode} (paper)",
                    points=numeric,
                    color=series_color(mode, i),
                    kind="paper",
                )
            )
    return panel


def _bars_panel(
    section: dict,
    spec: PublishSpec,
    panel_spec,
    reference: dict,
) -> PanelData:
    headers = section.get("headers", [])
    rows = section.get("rows", [])
    panel = PanelData(
        ylabel=panel_spec.ylabel,
        xlabel=spec.xlabel,
        kind="bars",
        logy=panel_spec.logy,
    )
    y_idx = _column_index(headers, panel_spec.y)
    if y_idx is None:
        return panel
    refs = reference.get(panel_spec.y, {})
    for i, mode in enumerate(_modes_in_order(rows)):
        for row in rows:
            if str(row[0]) != mode:
                continue
            value = _as_float(row[y_idx])
            if value is None:
                continue
            ref_points = refs.get(mode, [])
            ref = ref_points[0][1] if ref_points else None
            panel.bars.append(
                Bar(
                    label=mode,
                    value=value,
                    color=series_color(mode, i),
                    ref=ref,
                )
            )
            break  # one bar per mode (single-x figure)
    return panel


def build_figure_artifact(
    section: dict, spec: PublishSpec, footnote: str = ""
) -> FigureArtifact:
    """One report ``figures[]`` section -> a renderable artifact."""
    reference = reference_curves(spec.figure)
    build = _bars_panel if spec.bars_by_mode else _line_panel
    panels = [
        build(section, spec, panel_spec, reference)
        for panel_spec in spec.panels
    ]
    badges = [
        Badge(
            status=claim.get("status", "skip"),
            claim=claim.get("claim", "?"),
            observed=claim.get("observed", ""),
        )
        for claim in section.get("claims", [])
    ]
    return FigureArtifact(
        name=spec.figure,
        figure_id=section.get("figure_id", spec.figure),
        title=section.get("title", ""),
        panels=panels,
        badges=badges,
        truncated=list(section.get("truncated_phases", [])),
        footnote=footnote,
    )

"""The browsable artifact index: ``index.html``, stdlib-templated.

One self-contained page tying the published artifacts together:
provenance header, claim-summary stat tiles, one card per figure
(image + per-claim verdict table), the bench-history trend section,
and the trace-digest critical-path table.  No web framework, no
JavaScript dependency — ``html.escape`` plus f-strings, so the page
works from ``file://`` and as a CI artifact.

The claim tables double as the accessibility relief for the charts:
every figure's numbers are readable as text, and every verdict pairs
a glyph with its color.
"""

from __future__ import annotations

import html
from typing import Optional, Sequence

from .figdata import FigureArtifact
from .style import (
    FAIL_COLOR,
    GRID,
    PASS_COLOR,
    SKIP_COLOR,
    SURFACE,
    TEXT,
    TEXT_MUTED,
    WARN_COLOR,
)
from .tracedigest import (
    CRITICAL_PATH_HEADERS,
    TraceDigest,
    critical_path_rows,
)

__all__ = ["render_index"]

_CSS = f"""
body {{
  font-family: Georgia, 'Times New Roman', serif;
  background: {SURFACE}; color: {TEXT};
  margin: 0 auto; max-width: 1100px; padding: 24px;
}}
a {{ color: inherit; }}
h1 {{ font-size: 26px; margin-bottom: 4px; }}
h2 {{ font-size: 20px; margin-top: 36px;
     border-bottom: 1px solid {GRID}; padding-bottom: 6px; }}
.meta {{ color: {TEXT_MUTED}; font-size: 14px; }}
.meta code {{ font-size: 13px; }}
.tiles {{ display: flex; gap: 16px; margin: 18px 0; flex-wrap: wrap; }}
.tile {{
  border: 1px solid {GRID}; border-radius: 8px;
  padding: 10px 18px; min-width: 110px;
}}
.tile .num {{ font-size: 28px; font-weight: bold; }}
.tile .label {{ color: {TEXT_MUTED}; font-size: 13px; }}
.card {{
  border: 1px solid {GRID}; border-radius: 8px;
  padding: 16px; margin: 18px 0;
}}
.card img {{ max-width: 100%; height: auto; }}
.badges {{ margin: 6px 0; font-size: 14px; }}
.chip {{
  display: inline-block; border-radius: 4px; padding: 1px 8px;
  margin-right: 6px; border: 1px solid; font-size: 13px;
}}
.pass {{ color: {PASS_COLOR}; border-color: {PASS_COLOR}; }}
.fail {{ color: {FAIL_COLOR}; border-color: {FAIL_COLOR}; }}
.skip {{ color: {SKIP_COLOR}; border-color: {SKIP_COLOR}; }}
.warn {{ color: {WARN_COLOR}; }}
table {{ border-collapse: collapse; font-size: 13px; margin-top: 8px; }}
th, td {{
  border: 1px solid {GRID}; padding: 4px 10px; text-align: left;
}}
th {{ color: {TEXT_MUTED}; font-weight: normal; }}
details summary {{ cursor: pointer; color: {TEXT_MUTED};
                   font-size: 14px; margin-top: 8px; }}
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _table(headers: Sequence, rows: Sequence[Sequence]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )


def _claims_table(section: dict) -> str:
    claims = section.get("claims", [])
    if not claims:
        return ""
    rows = []
    for claim in claims:
        status = claim.get("status", "skip")
        symbol = {"pass": "✓", "fail": "✗"}.get(status, "–")
        rows.append(
            f"<tr><td class={status!r}>{symbol} {status}</td>"
            f"<td>{_esc(claim.get('claim', '?'))}</td>"
            f"<td>{_esc(claim.get('paper', ''))}</td>"
            f"<td>{_esc(claim.get('observed', ''))}</td></tr>"
        )
    return (
        "<details><summary>claims</summary><table><thead><tr>"
        "<th>verdict</th><th>claim</th><th>paper</th>"
        "<th>observed</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table></details>"
    )


def _figure_card(
    section: dict, artifact: FigureArtifact, image: str
) -> str:
    counts = artifact.badge_counts()
    chips = [
        f'<span class="chip pass">✓ {counts["pass"]} pass</span>',
        f'<span class="chip fail">✗ {counts["fail"]} fail</span>',
    ]
    if counts["skip"]:
        chips.append(
            f'<span class="chip skip">– {counts["skip"]}'
            " skipped</span>"
        )
    truncated = ""
    if artifact.truncated:
        names = _esc(", ".join(artifact.truncated[:4]))
        truncated = (
            f'<div class="warn">⚠ series truncated at sample cap:'
            f" {names}</div>"
        )
    return (
        f'<div class="card" id="{_esc(artifact.name)}">'
        f"<h3>{_esc(artifact.figure_id)} — {_esc(artifact.title)}"
        "</h3>"
        f'<div class="badges">{"".join(chips)}</div>'
        f'{truncated}'
        f'<img src="{_esc(image)}" alt="{_esc(artifact.figure_id)}">'
        f"{_claims_table(section)}"
        "</div>"
    )


def render_index(
    *,
    report: dict,
    cards: list[tuple[dict, FigureArtifact, str]],
    bench_image: Optional[str],
    bench_rows: int,
    trace_image: Optional[str],
    trace_digest: Optional[TraceDigest],
    style_name: str,
    fmt: str,
    backend: str,
) -> str:
    """Assemble the full index page as a string."""
    manifest = report.get("provenance", {})
    summary = report.get("summary", {})
    sha = str(manifest.get("git_sha", "unknown"))
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro publish — figure gallery</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Fast &amp; Safe IO Memory Protection — "
        "reproduction gallery</h1>",
        '<p class="meta">generated by <code>repro publish</code> — '
        f"git sha <code>{_esc(sha[:12])}</code>, "
        f"scale <code>{_esc(manifest.get('scale', '?'))}</code>, "
        f"seed <code>{_esc(manifest.get('seed', '?'))}</code>, "
        f"config hash <code>"
        f"{_esc(manifest.get('config_hash', '?'))}</code>, "
        f"style <code>{_esc(style_name)}</code>, "
        f"format <code>{_esc(fmt)}</code> "
        f"({_esc(backend)} backend)</p>",
        '<div class="tiles">',
        f'<div class="tile"><div class="num">'
        f'{_esc(summary.get("claims", 0))}</div>'
        '<div class="label">paper claims</div></div>',
        f'<div class="tile"><div class="num pass">'
        f'{_esc(summary.get("passed", 0))}</div>'
        '<div class="label">pass</div></div>',
        f'<div class="tile"><div class="num fail">'
        f'{_esc(summary.get("failed", 0))}</div>'
        '<div class="label">fail</div></div>',
        f'<div class="tile"><div class="num skip">'
        f'{_esc(summary.get("skipped", 0))}</div>'
        '<div class="label">skipped</div></div>',
        f'<div class="tile"><div class="num">{len(cards)}</div>'
        '<div class="label">figures</div></div>',
        "</div>",
        "<h2>Figures</h2>",
        '<p class="meta">solid lines: this reproduction; dashed '
        "lines with square markers: the paper's reported curves "
        "(approximate digitizations, presentation only — the gated "
        "comparison is each figure's claim table).</p>",
    ]
    for section, artifact, image in cards:
        parts.append(_figure_card(section, artifact, image))
    parts.append("<h2>Bench history</h2>")
    if bench_image:
        parts.append(
            f'<p class="meta">{bench_rows} committed bench runs '
            "(<code>bench_history.jsonl</code>; appended by "
            "<code>repro bench</code>).</p>"
            f'<div class="card"><img src="{_esc(bench_image)}" '
            'alt="bench trend"></div>'
        )
    else:
        parts.append(
            '<p class="meta">no bench history found — run '
            "<code>repro bench</code> to start one.</p>"
        )
    parts.append("<h2>Trace digest</h2>")
    if trace_image and trace_digest is not None:
        parts.append(
            f'<p class="meta">{trace_digest.span_count} spans across '
            f"{len(trace_digest.kinds)} kinds "
            f"({trace_digest.total_us:.0f} us total, "
            f"{trace_digest.instant_count} instants); critical path "
            "ranked by total span time.</p>"
            f'<div class="card"><img src="{_esc(trace_image)}" '
            'alt="trace digest">'
            + _table(
                CRITICAL_PATH_HEADERS,
                critical_path_rows(trace_digest),
            )
            + "</div>"
        )
    else:
        parts.append(
            '<p class="meta">no trace recorded for this run.</p>'
        )
    parts.append(
        '<p class="meta">underlying data: <a href="report.json">'
        "report.json</a> — identical to the gated "
        "<code>repro reproduce</code> document.</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"

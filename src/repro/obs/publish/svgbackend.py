"""Dependency-free SVG renderer for publication artifacts.

Matplotlib is the preferred backend (``pip install 'repro[publish]'``),
but the repo's tier-1 environment deliberately carries no plotting
dependency — so ``--format svg`` falls back to this small hand-rolled
renderer and the publish pipeline (and its CI job shape) works
anywhere.  It draws the same :class:`~repro.obs.publish.figdata.
FigureArtifact` model as the matplotlib backend: one row of panels,
series polylines (ours solid, paper dashed), mode-comparison bars with
reference levels, a claim-verdict badge strip and truncation markers.

Every element carries a CSS class (``series-ours``, ``badge-fail``,
``bar`` ...) so the tests assert structure by parsing the XML instead
of comparing pixels.
"""

from __future__ import annotations

import math
from typing import Callable, Optional
from xml.sax.saxutils import escape

from .figdata import FigureArtifact, PanelData
from .style import (
    FAIL_COLOR,
    GRID,
    PASS_COLOR,
    SKIP_COLOR,
    STYLES,
    SURFACE,
    TEXT,
    TEXT_MUTED,
    WARN_COLOR,
    Style,
)

__all__ = ["render_figure_svg"]

# Panel geometry (px); the style scales typography only, so the SVG
# stays readable at its natural size in the HTML index.
PLOT_W = 300
PLOT_H = 215
MARGIN_L = 58
MARGIN_R = 14
MARGIN_B = 46
PANEL_GAP = 18
HEADER_H = 64  # title + badges + legend
FOOTER_H = 22


def _fmt_num(value: float) -> str:
    """Short tick label: SI-style for large, trimmed float for small."""
    if value != 0 and abs(value) >= 1024 and float(value).is_integer():
        for unit, scale in (("M", 1024 * 1024), ("K", 1024)):
            if abs(value) >= scale and (value / scale).is_integer():
                return f"{int(value / scale)}{unit}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if value == int(value):
        return str(int(value))
    if abs(value) >= 1:
        return f"{value:.3g}"
    return f"{value:.2g}"


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Nice round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + (abs(lo) if lo else 1.0)
    span = hi - lo
    raw_step = span / max(n - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    start = math.floor(lo / step) * step
    ticks = []
    tick = start
    while tick <= hi + step * 0.51:
        if tick >= lo - step * 0.51:
            ticks.append(round(tick, 10))
        tick += step
    return ticks


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade ticks spanning [lo, hi] (clamped positive)."""
    lo = max(lo, 1e-12)
    hi = max(hi, lo * 10.0)
    ticks = []
    exp = math.floor(math.log10(lo))
    while 10.0**exp <= hi * 1.001:
        if 10.0**exp >= lo * 0.999:
            ticks.append(10.0**exp)
        exp += 1
    return ticks or [lo, hi]


def _scale(
    lo: float, hi: float, out: float, log: bool
) -> Callable[[float], float]:
    """Data value -> pixel offset in [0, out]."""
    if log:
        lo = max(lo, 1e-12)
        hi = max(hi, lo * 10)
        llo, lhi = math.log10(lo), math.log10(hi)
        span = lhi - llo or 1.0
        return lambda v: (
            (math.log10(max(v, 1e-12)) - llo) / span * out
        )
    span = hi - lo or 1.0
    return lambda v: (v - lo) / span * out


def _panel_limits(
    panel: PanelData,
) -> tuple[float, float, float, float]:
    xs: list[float] = []
    ys: list[float] = []
    for series in panel.series:
        for x, y in series.points:
            xs.append(x)
            ys.append(y)
    if not xs:
        xs = [0.0, 1.0]
    if not ys:
        ys = [0.0, 1.0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if not panel.logy:
        y_lo = min(y_lo, 0.0)
        y_hi = y_hi + 0.08 * (y_hi - y_lo or 1.0)
    else:
        y_lo = max(y_lo, 1e-12) / 1.5
        y_hi = max(y_hi, y_lo * 10.0) * 1.5
    if panel.logx:
        x_lo, x_hi = x_lo / 1.1, x_hi * 1.1
    else:
        pad = 0.04 * (x_hi - x_lo or 1.0)
        x_lo, x_hi = x_lo - pad, x_hi + pad
    return x_lo, x_hi, y_lo, y_hi


class _Svg:
    """A tiny element-list builder; keeps the renderer linear."""

    def __init__(self) -> None:
        self.parts: list[str] = []

    def add(self, element: str) -> None:
        self.parts.append(element)

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int,
        color: str = TEXT,
        anchor: str = "start",
        cls: str = "",
        family: str = "serif",
        rotate: Optional[float] = None,
    ) -> None:
        transform = (
            f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
            if rotate is not None
            else ""
        )
        cls_attr = f' class="{cls}"' if cls else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}"'
            f' font-family="{family}" fill="{color}"'
            f' text-anchor="{anchor}"{cls_attr}{transform}>'
            f"{escape(content)}</text>"
        )


def _draw_axes(
    svg: _Svg,
    origin: tuple[float, float],
    panel: PanelData,
    limits: tuple[float, float, float, float],
    style: Style,
) -> tuple[Callable[[float], float], Callable[[float], float]]:
    """Grid, ticks and labels; returns the (px, py) transforms."""
    ox, oy = origin  # top-left of the plot rect
    x_lo, x_hi, y_lo, y_hi = limits
    sx = _scale(x_lo, x_hi, PLOT_W, panel.logx)
    sy = _scale(y_lo, y_hi, PLOT_H, panel.logy)

    def px(v: float) -> float:
        return ox + sx(v)

    def py(v: float) -> float:
        return oy + PLOT_H - sy(v)

    font = style.font_family
    small = style.font_size - 2
    svg.add(
        f'<rect x="{ox}" y="{oy}" width="{PLOT_W}" height="{PLOT_H}"'
        f' fill="{SURFACE}" stroke="{GRID}" class="panel"/>'
    )
    if panel.kind == "bars":
        y_ticks = (
            _log_ticks(y_lo, y_hi)
            if panel.logy
            else _nice_ticks(y_lo, y_hi)
        )
        for tick in y_ticks:
            y = py(tick)
            svg.add(
                f'<line x1="{ox}" y1="{y:.1f}" x2="{ox + PLOT_W}"'
                f' y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>'
            )
            svg.text(
                ox - 6, y + small / 3, _fmt_num(tick), small,
                TEXT_MUTED, "end", family=font,
            )
    else:
        data_xs = sorted(
            {
                x
                for series in panel.series
                for x, _ in series.points
            }
        )
        x_ticks = (
            data_xs
            if 0 < len(data_xs) <= 7
            else (
                _log_ticks(x_lo, x_hi)
                if panel.logx
                else _nice_ticks(x_lo, x_hi)
            )
        )
        y_ticks = (
            _log_ticks(y_lo, y_hi)
            if panel.logy
            else _nice_ticks(y_lo, y_hi)
        )
        for tick in x_ticks:
            x = px(tick)
            svg.add(
                f'<line x1="{x:.1f}" y1="{oy}" x2="{x:.1f}"'
                f' y2="{oy + PLOT_H}" stroke="{GRID}"'
                ' stroke-width="1"/>'
            )
            svg.text(
                x, oy + PLOT_H + small + 4, _fmt_num(tick), small,
                TEXT_MUTED, "middle", family=font,
            )
        for tick in y_ticks:
            y = py(tick)
            svg.add(
                f'<line x1="{ox}" y1="{y:.1f}" x2="{ox + PLOT_W}"'
                f' y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>'
            )
            svg.text(
                ox - 6, y + small / 3, _fmt_num(tick), small,
                TEXT_MUTED, "end", family=font,
            )
    # Axis titles.
    svg.text(
        ox + PLOT_W / 2, oy + PLOT_H + MARGIN_B - 8, panel.xlabel,
        small, TEXT_MUTED, "middle", family=font, cls="xlabel",
    )
    svg.text(
        ox - MARGIN_L + 12, oy + PLOT_H / 2, panel.ylabel, small,
        TEXT_MUTED, "middle", family=font, cls="ylabel", rotate=-90,
    )
    return px, py


def _draw_lines(
    svg: _Svg, panel: PanelData, px, py
) -> None:
    for series in panel.series:
        points = sorted(series.points)
        coords = " ".join(
            f"{px(x):.1f},{py(y):.1f}" for x, y in points
        )
        dash = ' stroke-dasharray="6,4"' if series.kind == "paper" else ""
        cls = f"series-{series.kind}"
        if len(points) > 1:
            svg.add(
                f'<polyline points="{coords}" fill="none"'
                f' stroke="{series.color}" stroke-width="2"{dash}'
                f' class="{cls}"><title>{escape(series.label)}'
                "</title></polyline>"
            )
        for x, y in points:
            if series.kind == "paper":
                svg.add(
                    f'<rect x="{px(x) - 3:.1f}" y="{py(y) - 3:.1f}"'
                    f' width="6" height="6" fill="{SURFACE}"'
                    f' stroke="{series.color}" stroke-width="1.5"'
                    f' class="{cls}-marker"/>'
                )
            else:
                svg.add(
                    f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3.5"'
                    f' fill="{series.color}" stroke="{SURFACE}"'
                    f' stroke-width="1" class="{cls}-marker"/>'
                )


def _draw_bars(
    svg: _Svg,
    panel: PanelData,
    origin: tuple[float, float],
    py,
    style: Style,
) -> None:
    ox, oy = origin
    bars = panel.bars
    if not bars:
        return
    small = style.font_size - 2
    font = style.font_family
    slot = PLOT_W / len(bars)
    width = min(slot * 0.62, 54.0)
    base = py(0.0)
    for i, bar in enumerate(bars):
        x = ox + slot * (i + 0.5) - width / 2
        top = py(bar.value)
        height = max(base - top, 0.5)
        svg.add(
            f'<rect x="{x:.1f}" y="{top:.1f}" width="{width:.1f}"'
            f' height="{height:.1f}" rx="4" fill="{bar.color}"'
            f' stroke="{SURFACE}" stroke-width="2" class="bar">'
            f"<title>{escape(bar.label)}</title></rect>"
        )
        svg.text(
            x + width / 2, top - 4, _fmt_num(bar.value), small, TEXT,
            "middle", family=font, cls="bar-value",
        )
        svg.text(
            x + width / 2, base + small + 4, bar.label, small,
            TEXT_MUTED, "middle", family=font, cls="bar-label",
        )
        if bar.ref is not None:
            ref_y = py(bar.ref)
            svg.add(
                f'<line x1="{x - 4:.1f}" y1="{ref_y:.1f}"'
                f' x2="{x + width + 4:.1f}" y2="{ref_y:.1f}"'
                f' stroke="{TEXT}" stroke-width="1.5"'
                ' stroke-dasharray="5,3" class="bar-ref"/>'
            )


def _bars_limits(panel: PanelData) -> tuple[float, float, float, float]:
    values = [b.value for b in panel.bars] + [
        b.ref for b in panel.bars if b.ref is not None
    ]
    hi = max(values, default=1.0)
    return 0.0, 1.0, 0.0, hi * 1.15 or 1.0


def _badge_strip(
    svg: _Svg, artifact: FigureArtifact, y: float, style: Style
) -> None:
    """Claim-verdict summary chips + the first failing claims."""
    font = style.font_family
    small = style.font_size - 2
    counts = artifact.badge_counts()
    x = 10.0
    chips = [
        (f"{counts['pass']} pass", PASS_COLOR, "badge-pass"),
        (f"{counts['fail']} fail", FAIL_COLOR, "badge-fail"),
    ]
    if counts["skip"]:
        chips.append((f"{counts['skip']} skipped", SKIP_COLOR,
                      "badge-skip"))
    for text, color, cls in chips:
        width = 8 + len(text) * (small * 0.62)
        svg.add(
            f'<rect x="{x:.1f}" y="{y - small - 2:.1f}"'
            f' width="{width:.1f}" height="{small + 7}" rx="4"'
            f' fill="none" stroke="{color}" stroke-width="1.2"'
            f' class="{cls}"/>'
        )
        svg.text(
            x + width / 2, y, text, small, color, "middle",
            family=font,
        )
        x += width + 8
    failing = [b for b in artifact.badges if b.status == "fail"]
    if failing:
        preview = "; ".join(b.claim for b in failing[:2])
        if len(preview) > 88:
            preview = preview[:85] + "..."
        svg.text(
            x + 6, y, f"✗ {preview}", small, FAIL_COLOR,
            family=font, cls="badge-fail-detail",
        )


def render_figure_svg(
    artifact: FigureArtifact, style_name: str, path: str
) -> dict:
    """Render one artifact to an SVG file; returns structure counts."""
    style = STYLES[style_name]
    font = style.font_family
    n_panels = max(len(artifact.panels), 1)
    width = (
        MARGIN_L + PLOT_W + MARGIN_R
    ) * n_panels + PANEL_GAP * (n_panels - 1)
    height = HEADER_H + PLOT_H + MARGIN_B + FOOTER_H
    svg = _Svg()
    svg.add(
        f'<rect x="0" y="0" width="{width}" height="{height}"'
        f' fill="{SURFACE}"/>'
    )
    title = f"{artifact.figure_id} — {artifact.title}"
    svg.text(
        10, style.font_size + 8, title, style.font_size + 3, TEXT,
        family=font, cls="title",
    )
    if artifact.badges:
        _badge_strip(svg, artifact, HEADER_H - 26.0, style)
    # Legend: unique (label, color, kind) across panels, one row.
    seen: list[tuple[str, str, str]] = []
    for panel in artifact.panels:
        for series in panel.series:
            key = (series.label, series.color, series.kind)
            if key not in seen:
                seen.append(key)
    x = 10.0
    small = style.font_size - 2
    legend_y = HEADER_H - 8.0
    for label, color, kind in seen:
        dash = ' stroke-dasharray="6,4"' if kind == "paper" else ""
        svg.add(
            f'<line x1="{x:.1f}" y1="{legend_y - small / 3:.1f}"'
            f' x2="{x + 18:.1f}" y2="{legend_y - small / 3:.1f}"'
            f' stroke="{color}" stroke-width="2"{dash}'
            ' class="legend-sample"/>'
        )
        svg.text(
            x + 22, legend_y, label, small, TEXT_MUTED, family=font,
            cls="legend-label",
        )
        x += 26 + len(label) * (small * 0.62)
    counts = {"panels": 0, "series": 0, "bars": 0,
              "badges": len(artifact.badges)}
    for i, panel in enumerate(artifact.panels):
        ox = MARGIN_L + i * (MARGIN_L + PLOT_W + MARGIN_R + PANEL_GAP)
        oy = HEADER_H
        limits = (
            _bars_limits(panel)
            if panel.kind == "bars"
            else _panel_limits(panel)
        )
        px, py = _draw_axes(svg, (ox, oy), panel, limits, style)
        if panel.kind == "bars":
            _draw_bars(svg, panel, (ox, oy), py, style)
            counts["bars"] += len(panel.bars)
        else:
            _draw_lines(svg, panel, px, py)
            counts["series"] += len(panel.series)
        counts["panels"] += 1
    footer_y = height - 8.0
    if artifact.truncated:
        labels = ", ".join(artifact.truncated[:3])
        svg.text(
            10, footer_y, f"⚠ series truncated at sample cap: {labels}",
            small, WARN_COLOR, family=font, cls="truncated",
        )
    elif artifact.footnote:
        svg.text(
            10, footer_y, artifact.footnote, small, TEXT_MUTED,
            family=font, cls="footnote",
        )
    body = "\n".join(svg.parts)
    document = (
        '<svg xmlns="http://www.w3.org/2000/svg"'
        f' width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}" role="img"'
        f' aria-label="{escape(title)}">\n{body}\n</svg>\n'
    )
    with open(path, "w") as handle:
        handle.write(document)
    return counts

"""SpanTracer trace digest: histograms + critical path from a trace.

The simulator's :class:`~repro.obs.tracer.SpanTracer` emits Chrome
``traceEvents`` JSON (``ph == "X"`` complete events with ``ts``/``dur``
in microseconds).  This module reduces a trace to a publishable
digest: per-span-kind duration statistics, half-decade log-scale
duration histograms, and a critical-path table ranked by total time —
rendered as one summary figure plus an HTML table.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from .figdata import FigureArtifact, Bar, PanelData, Series
from .style import series_color

__all__ = [
    "SpanKindStats",
    "TraceDigest",
    "digest_trace",
    "load_trace",
    "critical_path_rows",
    "digest_artifact",
]

# Histograms bucket durations into half-decade log10 bins; bin k
# covers [10^(k/2), 10^((k+1)/2)) microseconds.
_MIN_DUR_US = 1e-3


@dataclass
class SpanKindStats:
    """Aggregate duration stats for one span kind (event name)."""

    kind: str
    count: int
    total_us: float
    mean_us: float
    p50_us: float
    p95_us: float
    max_us: float
    share: float  # fraction of summed span time
    histogram: dict[int, int] = field(default_factory=dict)


@dataclass
class TraceDigest:
    """Everything extracted from one trace document."""

    kinds: list[SpanKindStats]  # sorted by total_us desc
    span_count: int
    total_us: float
    instant_count: int
    tracks: list[str]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1,
               math.ceil(q * len(sorted_values)) - 1)
    )
    return sorted_values[rank]


def _bin_index(dur_us: float) -> int:
    return math.floor(2.0 * math.log10(max(dur_us, _MIN_DUR_US)))


def bin_center_us(index: int) -> float:
    return 10.0 ** ((index + 0.5) / 2.0)


def load_trace(path: str) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(
            f"{path}: not a Chrome trace document "
            "(missing traceEvents)"
        )
    return doc


def digest_trace(doc: dict) -> TraceDigest:
    """Reduce a Chrome-trace document to per-kind statistics."""
    durations: dict[str, list[float]] = {}
    tracks: list[str] = []
    instant_count = 0
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict):
            continue
        phase = event.get("ph")
        if phase == "i":
            instant_count += 1
            continue
        if phase != "X":
            continue
        name = str(event.get("name", "?"))
        dur = event.get("dur")
        if isinstance(dur, bool) or not isinstance(
            dur, (int, float)
        ):
            continue
        durations.setdefault(name, []).append(float(dur))
        track = str(event.get("tid", ""))
        if track and track not in tracks:
            tracks.append(track)
    total_us = sum(sum(values) for values in durations.values())
    kinds: list[SpanKindStats] = []
    for name, values in durations.items():
        values.sort()
        kind_total = sum(values)
        histogram: dict[int, int] = {}
        for value in values:
            idx = _bin_index(value)
            histogram[idx] = histogram.get(idx, 0) + 1
        kinds.append(
            SpanKindStats(
                kind=name,
                count=len(values),
                total_us=kind_total,
                mean_us=kind_total / len(values),
                p50_us=_percentile(values, 0.50),
                p95_us=_percentile(values, 0.95),
                max_us=values[-1],
                share=kind_total / total_us if total_us else 0.0,
                histogram=histogram,
            )
        )
    kinds.sort(key=lambda k: (-k.total_us, k.kind))
    return TraceDigest(
        kinds=kinds,
        span_count=sum(k.count for k in kinds),
        total_us=total_us,
        instant_count=instant_count,
        tracks=sorted(tracks),
    )


def critical_path_rows(
    digest: TraceDigest, limit: int = 12
) -> list[list]:
    """Critical-path table: span kinds ranked by total time."""
    rows: list[list] = []
    for stats in digest.kinds[:limit]:
        rows.append(
            [
                stats.kind,
                stats.count,
                round(stats.total_us, 1),
                round(stats.share * 100.0, 1),
                round(stats.mean_us, 2),
                round(stats.p50_us, 2),
                round(stats.p95_us, 2),
                round(stats.max_us, 2),
            ]
        )
    return rows


CRITICAL_PATH_HEADERS = [
    "span kind", "count", "total us", "share %", "mean us",
    "p50 us", "p95 us", "max us",
]


def digest_artifact(
    digest: TraceDigest, top: int = 5
) -> FigureArtifact:
    """The one-figure trace summary: time-by-kind bars + duration
    histograms (half-decade bins, log x) for the top kinds."""
    top_kinds = digest.kinds[:top]
    bars_panel = PanelData(
        ylabel="total span time (us)",
        xlabel="span kind",
        kind="bars",
    )
    for i, stats in enumerate(top_kinds):
        bars_panel.bars.append(
            Bar(
                label=stats.kind,
                value=round(stats.total_us, 1),
                color=series_color(stats.kind, i),
            )
        )
    hist_panel = PanelData(
        ylabel="span count",
        xlabel="span duration (us, half-decade bins)",
        logx=True,
    )
    for i, stats in enumerate(top_kinds):
        points = [
            (bin_center_us(idx), float(count))
            for idx, count in sorted(stats.histogram.items())
        ]
        if points:
            hist_panel.series.append(
                Series(
                    label=stats.kind,
                    points=points,
                    color=series_color(stats.kind, i),
                )
            )
    dropped = len(digest.kinds) - len(top_kinds)
    footnote = (
        f"{digest.span_count} spans, {len(digest.kinds)} kinds, "
        f"{digest.total_us:.0f} us total"
        + (f"; top {top} kinds shown, {dropped} omitted"
           if dropped > 0 else "")
    )
    return FigureArtifact(
        name="trace_digest",
        figure_id="Trace digest",
        title="span time by kind and duration distribution",
        panels=[bars_panel, hist_panel],
        footnote=footnote,
    )

"""Publication pipeline: figures, trend dashboard, HTML gallery.

``repro publish out/`` renders every reproduced figure as a
publication chart (paper reference curves overlaid, claim-verdict
badges attached), the bench-history trend, and a span-trace digest,
tied together by a browsable ``index.html``::

    from repro.obs.publish import build_figure_artifact, PUBLISH_SPECS

Module map — data flows top to bottom:

* :mod:`.datasource` — report documents (load or regenerate through
  the shared ``collect_sections`` loop) and trace recording;
* :mod:`.figspecs` / :mod:`.figdata` — per-figure panel layouts and
  the backend-independent artifact model;
* :mod:`.bench_trend` / :mod:`.tracedigest` — the two derived
  dashboards (bench history, span digest);
* :mod:`.style` — palette and publication style presets;
* :mod:`.svgbackend` / :mod:`.mplbackend` — the two renderers
  (builtin SVG always available; matplotlib via the ``publish``
  extra for png/pdf);
* :mod:`.htmlindex` / :mod:`.cli` — the gallery page and the
  ``repro publish`` entry point.

Importing this package never imports matplotlib; the dependency is
probed lazily so the bare tier-1 environment stays sufficient for
``--format svg``.
"""

from .figdata import (
    Badge,
    Bar,
    FigureArtifact,
    PanelData,
    Series,
    build_figure_artifact,
)
from .figspecs import PUBLISH_SPECS, PanelSpec, PublishSpec
from .mplbackend import have_matplotlib
from .style import MODE_COLORS, STYLES, Style, series_color
from .svgbackend import render_figure_svg
from .tracedigest import TraceDigest, digest_trace

__all__ = [
    "Badge",
    "Bar",
    "FigureArtifact",
    "PanelData",
    "Series",
    "build_figure_artifact",
    "PUBLISH_SPECS",
    "PanelSpec",
    "PublishSpec",
    "have_matplotlib",
    "MODE_COLORS",
    "STYLES",
    "Style",
    "series_color",
    "render_figure_svg",
    "TraceDigest",
    "digest_trace",
]

"""Publication styles and the shared chart palette.

One place for everything visual, so the matplotlib backend and the
dependency-free SVG backend render the *same* design: series colors
follow the protection mode (the entity), never the draw order; paper
reference curves reuse the mode's hue dashed, so "ours vs paper" is
carried by line style while identity stays with color; pass/fail
badges use the reserved status colors and always pair a glyph with the
color so state is never color-alone.

The categorical palette is the validated default order (adjacent-pair
colorblind separation ΔE >= 8, normal-vision >= 15 on a light
surface); sub-3:1-contrast slots are relieved by the HTML index's
claim tables and per-series direct labels.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Style",
    "STYLES",
    "MODE_COLORS",
    "EXTRA_COLORS",
    "PASS_COLOR",
    "FAIL_COLOR",
    "SKIP_COLOR",
    "WARN_COLOR",
    "SURFACE",
    "TEXT",
    "TEXT_MUTED",
    "GRID",
    "series_color",
]


@dataclass(frozen=True)
class Style:
    """One publication style: sizing and typography parameters."""

    name: str
    panel_width: float  # inches per panel (matplotlib)
    panel_height: float
    font_size: int
    save_dpi: int
    font_family: str  # "serif" | "sans-serif"


STYLES: dict[str, Style] = {
    "paper": Style(
        name="paper",
        panel_width=3.2,
        panel_height=2.6,
        font_size=11,
        save_dpi=300,
        font_family="serif",
    ),
    "arxiv": Style(
        name="arxiv",
        panel_width=3.0,
        panel_height=2.4,
        font_size=10,
        save_dpi=300,
        font_family="serif",
    ),
}

# Categorical slots in validated fixed order; a protection mode keeps
# its slot in every figure (color follows the entity).
MODE_COLORS: dict[str, str] = {
    "off": "#2a78d6",  # blue
    "strict": "#eb6834",  # orange
    "fns": "#1baf7a",  # aqua
    "linux+A": "#eda100",  # yellow
    "linux+B": "#e87ba4",  # magenta
}

# Remaining validated slots for series outside the mode vocabulary
# (bench trend lines, model columns); assigned by stable sorted order.
EXTRA_COLORS: tuple[str, ...] = (
    "#2a78d6",
    "#eb6834",
    "#1baf7a",
    "#eda100",
    "#e87ba4",
    "#008300",
    "#4a3aa7",
    "#e34948",
)

# Status colors (reserved; never used for a data series).
PASS_COLOR = "#0ca30c"
FAIL_COLOR = "#d03b3b"
WARN_COLOR = "#ec835a"
SKIP_COLOR = "#52514e"

SURFACE = "#fcfcfb"
TEXT = "#0b0b0b"
TEXT_MUTED = "#52514e"
GRID = "#e7e6e2"


def series_color(label: str, index: int) -> str:
    """The color for a series: its mode's slot, else a stable extra."""
    color = MODE_COLORS.get(label)
    if color is not None:
        return color
    return EXTRA_COLORS[index % len(EXTRA_COLORS)]

"""Memory access latency model.

The paper's throughput model (§2.2) characterizes the datapath with two
fitted constants:

* ``l0`` = 65 ns — the average per-packet DMA cost in the absence of
  memory protection (PCIe transfer, DMA engine, descriptor handling,
  amortized over the parallelism of the DMA engine);
* ``lm`` = 197 ns — the average IOMMU-to-memory read latency for one IO
  page table access during a page walk (again averaged over walker
  parallelism).

We adopt those constants as the simulator's service-time parameters
(DESIGN.md §5.1) and additionally model *contention inflation*: when the
aggregate memory read rate approaches the channel bandwidth, per-read
latency rises.  The paper's Cascade Lake setup has 2 DDR4 channels
(46.9 GB/s theoretical); the Ice Lake setup has 8.  Contention matters
for the multi-core Fig 10 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryLatencyModel", "DEFAULT_L0_NS", "DEFAULT_LM_NS"]

DEFAULT_L0_NS = 65.0
DEFAULT_LM_NS = 197.0


@dataclass
class MemoryLatencyModel:
    """Computes per-read latencies with optional bandwidth contention.

    Parameters
    ----------
    base_read_ns:
        Uncontended IOMMU-to-memory read latency (the paper's ``lm``).
    channel_bandwidth_gbps:
        Aggregate memory bandwidth in GB/s; reads inflate as utilization
        approaches it.
    contention_exponent:
        Shape of the inflation curve; latency multiplies by
        ``1 / (1 - u**e)`` for utilization ``u`` (M/M/1-flavoured).
    """

    base_read_ns: float = DEFAULT_LM_NS
    channel_bandwidth_gbps: float = 46.9
    contention_exponent: float = 4.0
    _window_bytes: float = 0.0
    _window_start_ns: float = 0.0

    def read_latency_ns(self, utilization: float = 0.0) -> float:
        """Latency of one page-table read at the given utilization.

        ``utilization`` is the fraction of channel bandwidth in use
        (0 ≤ u < 1); values ≥ 1 are clamped just below saturation.
        """
        if utilization <= 0.0:
            return self.base_read_ns
        u = min(utilization, 0.99)
        inflation = 1.0 / (1.0 - u ** self.contention_exponent)
        return self.base_read_ns * inflation

    def utilization(self, bytes_per_ns: float) -> float:
        """Convert a byte rate (bytes/ns == GB/s) to channel utilization."""
        return min(1.0, bytes_per_ns / self.channel_bandwidth_gbps)

"""Host memory substrate: physical frames and latency model."""

from .latency import DEFAULT_L0_NS, DEFAULT_LM_NS, MemoryLatencyModel
from .physmem import PAGE_SHIFT, PAGE_SIZE, OutOfMemoryError, PhysicalMemory

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PhysicalMemory",
    "OutOfMemoryError",
    "MemoryLatencyModel",
    "DEFAULT_L0_NS",
    "DEFAULT_LM_NS",
]

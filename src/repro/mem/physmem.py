"""Physical memory frame allocator.

The NIC driver allocates physical 4 KB frames to back Rx descriptor
buffers and Tx socket buffers; the IOMMU driver maps IOVAs onto those
frames.  This module provides a simple free-list frame allocator with
the accounting the experiments need (frames in use, allocation churn).

Frame numbers, not byte addresses, are the currency: frame ``n`` covers
physical bytes ``[n * PAGE_SIZE, (n + 1) * PAGE_SIZE)``.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["PAGE_SIZE", "PAGE_SHIFT", "PhysicalMemory", "OutOfMemoryError"]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KB


class OutOfMemoryError(MemoryError):
    """Raised when the frame allocator is exhausted."""


class PhysicalMemory:
    """A fixed pool of 4 KB physical frames.

    Frames are handed out LIFO (hot frames are reused first, like a real
    per-CPU page allocator), which also makes allocation O(1).
    """

    HUGE_FRAMES = 512  # 2 MB of 4 KB frames

    def __init__(self, total_frames: int = 1 << 20) -> None:
        if total_frames <= 0:
            raise ValueError("need at least one frame")
        self.total_frames = total_frames
        self._free: list[int] = list(range(total_frames - 1, -1, -1))
        self._allocated: set[int] = set()
        self.alloc_count = 0
        self.free_count = 0
        # Huge (2 MB) allocations come from a separate, aligned region
        # growing down from a high watermark, with a free list for
        # reuse; 4 KB and 2 MB allocations never overlap because the
        # huge watermark starts above ``total_frames``.
        self._huge_next = ((total_frames + 511) // 512 + 1) * 512
        self._huge_free: list[int] = []
        self._huge_allocated: set[int] = set()

    def alloc_frame(self) -> int:
        """Allocate one frame; raises :class:`OutOfMemoryError` if empty."""
        if not self._free:
            raise OutOfMemoryError("physical memory exhausted")
        frame = self._free.pop()
        self._allocated.add(frame)
        self.alloc_count += 1
        return frame

    def alloc_frames(self, count: int) -> list[int]:
        """Allocate ``count`` frames (not necessarily contiguous)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, frame: int) -> None:
        """Return a frame to the pool; double frees raise ``ValueError``."""
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.remove(frame)
        self._free.append(frame)
        self.free_count += 1

    def free_frames(self, frames: Iterable[int]) -> None:
        for frame in frames:
            self.free_frame(frame)

    def alloc_huge(self) -> int:
        """Allocate 512 physically contiguous, 2 MB-aligned frames;
        returns the base frame number."""
        if self._huge_free:
            base = self._huge_free.pop()
        else:
            base = self._huge_next
            self._huge_next += self.HUGE_FRAMES
        self._huge_allocated.add(base)
        self.alloc_count += 1
        return base

    def free_huge(self, base_frame: int) -> None:
        """Return a huge allocation; double frees raise ``ValueError``."""
        if base_frame not in self._huge_allocated:
            raise ValueError(f"huge frame {base_frame} is not allocated")
        self._huge_allocated.remove(base_frame)
        self._huge_free.append(base_frame)
        self.free_count += 1

    @property
    def huge_in_use(self) -> int:
        return len(self._huge_allocated)

    @property
    def frames_in_use(self) -> int:
        return len(self._allocated) + 512 * len(self._huge_allocated)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated

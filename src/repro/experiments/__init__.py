"""Experiment runners: one per paper figure, plus run-scale presets."""

from .faultsweep import fault_sweep, sweep_plans
from .figures import (
    FigureResult,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)
from .settings import FULL, QUICK, RunScale

__all__ = [
    "FigureResult",
    "fig2_flows",
    "fig3_ring",
    "model_fit",
    "fig7_fns_flows",
    "fig8_fns_ring",
    "fig9_rpc_latency",
    "fig10_rxtx",
    "fig11_redis",
    "fig11_nginx",
    "fig11_spdk",
    "fig12_ablation",
    "fault_sweep",
    "sweep_plans",
    "RunScale",
    "QUICK",
    "FULL",
]

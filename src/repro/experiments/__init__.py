"""Experiment runners: one per paper figure, plus run-scale presets."""

from .chaos import (
    DEFAULT_MTTR_BOUND_NS,
    ChaosFailure,
    run_chaos,
    sample_plan,
    shrink_plan,
)
from .faultsweep import fault_sweep, sweep_plans
from .figures import (
    FigureResult,
    fig2_flows,
    fig3_ring,
    fig7_fns_flows,
    fig8_fns_ring,
    fig9_rpc_latency,
    fig10_rxtx,
    fig11_nginx,
    fig11_redis,
    fig11_spdk,
    fig12_ablation,
    model_fit,
)
from .settings import FULL, QUICK, RunScale

__all__ = [
    "FigureResult",
    "fig2_flows",
    "fig3_ring",
    "model_fit",
    "fig7_fns_flows",
    "fig8_fns_ring",
    "fig9_rpc_latency",
    "fig10_rxtx",
    "fig11_redis",
    "fig11_nginx",
    "fig11_spdk",
    "fig12_ablation",
    "fault_sweep",
    "sweep_plans",
    "run_chaos",
    "sample_plan",
    "shrink_plan",
    "ChaosFailure",
    "DEFAULT_MTTR_BOUND_NS",
    "RunScale",
    "QUICK",
    "FULL",
]

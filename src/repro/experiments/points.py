"""Registered point runners: one callable per sweep-cell shape.

Every figure sweep cell — "run iperf in this mode with this many
flows" — is expressed as a named entry in :data:`POINT_RUNNERS` so the
parallel executor can name it in a picklable
:class:`~repro.parallel.spec.PointSpec` and execute it in any process.
A runner takes ``(spec, scale)`` and returns the app's picklable result
object; row formatting stays in the figure assemblers
(:mod:`repro.experiments.figures`), which run in the parent either way.

The fault row is special: its invariant monitor and fault plan are
*part of the point* (each row gets a fresh monitor; the plan ships in
``spec.payload``), so fault sweeps parallelize without any global
hook state.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..apps.iperf import run_bidirectional_iperf, run_iperf
from ..apps.netperf import run_netperf_rpc
from ..apps.nginx import run_nginx
from ..apps.redis import run_redis
from ..apps.spdk import run_spdk
from ..faults import faulted
from ..iommu import IommuConfig
from ..parallel.spec import PointSpec
from ..sim import EarlyQuiescenceError, WatchdogError
from ..verify import InvariantMonitor, InvariantViolation, monitored
from .settings import RunScale

__all__ = ["POINT_RUNNERS", "point_runner"]

POINT_RUNNERS: Dict[str, Callable[[PointSpec, RunScale], object]] = {}

# Fault rows watchdog their runs: an injected fault that deadlocks the
# workload must become a pending-event trace, not an infinite loop.
_FAULT_WATCHDOG_INTERVAL_NS = 2_000_000.0

# Chaos rows recover from hard faults by resetting the device, which
# drops every in-flight segment and stalls the DCTCP senders until
# their RTOs fire (~4 ms).  The watchdog must outlast that legitimate
# quiet period or it would misreport a successful recovery as a hang.
_CHAOS_WATCHDOG_INTERVAL_NS = 10_000_000.0


def point_runner(name: str):
    """Register a point runner under ``name`` (its PointSpec key)."""

    def register(fn):
        POINT_RUNNERS[name] = fn
        return fn

    return register


@point_runner("iperf_flows")
def _iperf_flows(spec: PointSpec, scale: RunScale):
    return run_iperf(
        spec.mode,
        flows=spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
    )


@point_runner("iperf_ring")
def _iperf_ring(spec: PointSpec, scale: RunScale):
    return run_iperf(
        spec.mode,
        flows=5,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
        ring_size_packets=spec.x,
    )


@point_runner("netperf_rpc")
def _netperf_rpc(spec: PointSpec, scale: RunScale):
    return run_netperf_rpc(
        spec.mode,
        spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.latency_measure_ns,
    )


@point_runner("bidir_iperf")
def _bidir_iperf(spec: PointSpec, scale: RunScale):
    return run_bidirectional_iperf(
        spec.mode,
        spec.x,
        spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
    )


@point_runner("redis")
def _redis(spec: PointSpec, scale: RunScale):
    return run_redis(
        spec.mode,
        spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
    )


@point_runner("nginx")
def _nginx(spec: PointSpec, scale: RunScale):
    return run_nginx(
        spec.mode,
        spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
    )


@point_runner("spdk")
def _spdk(spec: PointSpec, scale: RunScale):
    return run_spdk(
        spec.mode,
        spec.x,
        warmup_ns=scale.warmup_ns,
        measure_ns=scale.measure_ns,
    )


@point_runner("fault_row")
def _fault_row(spec: PointSpec, scale: RunScale):
    """One fault-sweep row: iperf under a fresh monitor (+ plan).

    ``spec.payload`` is ``(plan_or_None, flows)``; the baseline row
    ships ``plan=None``.  The monitor and fault runtime are scoped to
    this call, so the row behaves identically inline and in a worker.
    A violation propagates (the sweep's safety bar).
    """
    plan, flows = spec.payload
    monitor = InvariantMonitor()
    timeline = None
    injected = 0
    with monitored(monitor):
        if plan is None:
            point = run_iperf(
                spec.mode,
                flows=flows,
                warmup_ns=scale.warmup_ns,
                measure_ns=scale.measure_ns,
                strict_until=True,
                watchdog_interval_ns=_FAULT_WATCHDOG_INTERVAL_NS,
            )
        else:
            with faulted(plan) as runtime:
                point = run_iperf(
                    spec.mode,
                    flows=flows,
                    warmup_ns=scale.warmup_ns,
                    measure_ns=scale.measure_ns,
                    strict_until=True,
                    watchdog_interval_ns=_FAULT_WATCHDOG_INTERVAL_NS,
                )
            injected = runtime.injected_faults
            timeline = runtime.timeline_text()
    return {
        "point": point,
        "injected": injected,
        "violations": len(monitor.violations),
        "timeline": timeline,
    }


@point_runner("chaos_row")
def _chaos_row(spec: PointSpec, scale: RunScale):
    """One chaos-search schedule: iperf + recovery under random faults.

    ``spec.payload`` is ``(plan, flows, recovery)``.  Unlike the fault
    sweep, nothing propagates: a violation, watchdog trip or dead
    workload is the row's *finding* (the chaos bar judges the returned
    dict), so the row always comes back picklable — with the fault
    timeline, which must be byte-identical across worker counts.
    """
    plan, flows, recovery = spec.payload
    monitor = InvariantMonitor()
    outcome = "ok"
    point = None
    with monitored(monitor):
        with faulted(plan) as runtime:
            try:
                point = run_iperf(
                    spec.mode,
                    flows=flows,
                    warmup_ns=scale.warmup_ns,
                    measure_ns=scale.measure_ns,
                    strict_until=True,
                    watchdog_interval_ns=_CHAOS_WATCHDOG_INTERVAL_NS,
                    recovery=recovery,
                    iommu=IommuConfig(fault_queue=True),
                )
            except WatchdogError:
                outcome = "watchdog"
            except EarlyQuiescenceError:
                outcome = "quiesced"
            except InvariantViolation:
                outcome = "violation"
    extras = point.extras if point is not None else {}
    return {
        "outcome": outcome,
        "goodput_gbps": (
            point.rx_goodput_gbps if point is not None else 0.0
        ),
        "injected": runtime.injected_faults,
        "violations": len(monitor.violations),
        "timeline": runtime.timeline_text(),
        "unrecovered_wedges": runtime.unrecovered_wedges(),
        "recoveries": extras.get("recoveries", 0),
        "mttr_max_ns": extras.get("mttr_max_ns", 0.0),
        "rx_dma_aborts": extras.get("rx_dma_aborts", 0),
        "faults_reported": extras.get("faults_reported", 0),
    }

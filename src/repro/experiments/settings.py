"""Experiment durations and shared run-length presets.

Every figure runner accepts a :class:`RunScale`.  ``FULL`` is the
benchmark-suite default; ``QUICK`` keeps integration tests fast while
preserving every qualitative shape (the warm-up still covers DCTCP
convergence).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RunScale", "QUICK", "FULL"]


@dataclass(frozen=True)
class RunScale:
    """Warm-up and measurement durations (ns) for experiment runs."""

    name: str
    warmup_ns: float
    measure_ns: float
    # Longer horizon for tail-latency experiments (need many RPCs and
    # several RTO-scale events).
    latency_measure_ns: float


QUICK = RunScale(
    name="quick",
    warmup_ns=2_000_000.0,
    measure_ns=5_000_000.0,
    latency_measure_ns=15_000_000.0,
)

FULL = RunScale(
    name="full",
    warmup_ns=4_000_000.0,
    measure_ns=15_000_000.0,
    latency_measure_ns=60_000_000.0,
)

"""Chaos search: random fault schedules vs. the safety+liveness bar.

The fault sweep (:mod:`repro.experiments.faultsweep`) checks one
hand-picked plan per injector family.  Chaos search instead *samples*
schedules: ``--seeds N`` draws N random plans — 2..5 specs each, any
mix of transient and hard faults, seeded windows/probabilities — and
runs every one under a fresh invariant monitor with recovery enabled.
A schedule passes only if it meets both bars:

* **safety** — zero invariant violations (the paper's protection
  contract: faults may cost throughput, never expose freed memory);
* **liveness** — the run completes (no watchdog / early quiescence),
  every latched hard fault was recovered by the reset protocol
  (:class:`~repro.nic.recovery.RecoveryManager`), and the worst MTTR
  stayed within the documented bound (DESIGN.md §14).

Rows are independent :class:`~repro.parallel.PointSpec` points, so
``--jobs N`` fans them across the shared process pool with
byte-identical timelines (plans are built in the parent; injector
streams are pure functions of the plan seed).

When a schedule fails the bar, :func:`shrink_plan` delta-debugs it
(ddmin over the spec set, re-running candidate subsets serially) down
to a minimal reproducer — typically 1..3 specs — which the CLI writes
as a committed plan JSON for ``repro run fig7 --faults plan.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..faults import FaultPlan, FaultSpec
from ..faults.plan import HARD_KINDS, KINDS_BY_COMPONENT
from ..parallel import PointSpec, derive_seed, run_points
from ..sim.rng import SeededRng
from .figures import FigureResult
from .settings import QUICK, RunScale

__all__ = [
    "DEFAULT_MTTR_BOUND_NS",
    "ChaosFailure",
    "failure_reasons",
    "run_chaos",
    "sample_plan",
    "shrink_plan",
]

# Documented recovery-time bound (DESIGN.md §14): quiesce + reset +
# descriptor-retire CPU + resume is ~0.5 ms on the modeled host; 2 ms
# leaves headroom for retire work under large rings.
DEFAULT_MTTR_BOUND_NS = 2_000_000.0

CHAOS_HEADERS = [
    "plan",
    "specs",
    "gbps",
    "faults",
    "recov",
    "mttr_us",
    "wedges",
    "viol",
    "outcome",
    "verdict",
]

# Per-kind sampling ranges: (probability low/high, magnitude low/high).
# Probabilities are per-opportunity, so per-translation kinds must stay
# small: a fault-storm at p=0.01 compounds over ~16 DMA transactions
# per page into ~15% packet loss and collapses the DCTCP workload —
# which then starves the very windows the schedule meant to exercise.
_KIND_PARAMS: dict[str, tuple[tuple[float, float], tuple[float, float]]] = {
    "drop-completion": ((0.05, 0.30), (0.0, 0.0)),
    "delay-completion": ((0.20, 0.60), (500.0, 4_000.0)),
    "partial-completion": ((0.05, 0.30), (0.0, 0.0)),
    "wedge-invq": ((1.0, 1.0), (0.0, 0.0)),
    "link-flap": ((1.0, 1.0), (0.0, 0.0)),
    "lane-loss": ((1.0, 1.0), (2.0, 2.0)),
    "nack-replay": ((0.05, 0.30), (500.0, 4_000.0)),
    "ring-stall": ((1.0, 1.0), (0.0, 0.0)),
    "doorbell-drop": ((0.05, 0.20), (20_000.0, 200_000.0)),
    "device-wedge": ((1.0, 1.0), (0.0, 0.0)),
    "loss": ((0.001, 0.010), (0.0, 0.0)),
    "reorder": ((0.02, 0.10), (2_000.0, 20_000.0)),
    "fault-storm": ((0.0002, 0.0020), (0.0, 0.0)),
}


def _catalog() -> list[tuple[str, str]]:
    """Every (component, kind) pair, in stable catalog order."""
    return [
        (component, kind)
        for component, kinds in KINDS_BY_COMPONENT.items()
        for kind in kinds
    ]


def sample_plan(
    root_seed: int, index: int, scale: RunScale = QUICK
) -> FaultPlan:
    """Draw the ``index``-th random schedule for ``root_seed``.

    Pure function of its arguments: the same (root seed, index, scale)
    triple yields a byte-identical plan in every process, which is what
    makes ``--jobs N`` chaos timelines match a serial run.  Each plan
    holds 2..5 distinct (component, kind) specs with seeded windows;
    hard faults open early enough that detection + reset + the ensuing
    sender RTO stall all fit inside the run horizon.
    """
    rng = SeededRng(root_seed, f"chaos/{index}")
    remaining = _catalog()
    count = rng.randint(2, min(5, len(remaining)))
    specs = []
    for _ in range(count):
        component, kind = remaining.pop(rng.randint(0, len(remaining) - 1))
        (p_lo, p_hi), (m_lo, m_hi) = _KIND_PARAMS[kind]
        if kind in HARD_KINDS:
            # A latched wedge needs the rest of the horizon to be
            # detected, reset, and for the transport to recover.
            start = rng.uniform(
                0.5 * scale.warmup_ns,
                scale.warmup_ns + 0.35 * scale.measure_ns,
            )
            duration = rng.uniform(0.10, 0.20) * scale.measure_ns
        else:
            start = rng.uniform(
                0.3 * scale.warmup_ns,
                scale.warmup_ns + 0.6 * scale.measure_ns,
            )
            duration = rng.uniform(0.05, 0.25) * scale.measure_ns
        horizon = scale.warmup_ns + scale.measure_ns
        specs.append(
            FaultSpec(
                component,
                kind,
                start_ns=start,
                end_ns=min(start + duration, horizon),
                probability=rng.uniform(p_lo, p_hi),
                magnitude=rng.uniform(m_lo, m_hi),
            )
        )
    specs.sort(key=lambda spec: (spec.start_ns, spec.component, spec.kind))
    return FaultPlan(
        seed=derive_seed(root_seed, "Chaos", "plan", index),
        name=f"chaos-{index}",
        specs=tuple(specs),
    )


def failure_reasons(row: dict, mttr_bound_ns: float) -> list[str]:
    """Why a chaos row failed the bar (empty list = pass)."""
    reasons = []
    if row["outcome"] != "ok":
        reasons.append(f"outcome:{row['outcome']}")
    if row["violations"]:
        reasons.append(f"violations:{row['violations']}")
    if row["unrecovered_wedges"]:
        reasons.append(f"unrecovered-wedges:{row['unrecovered_wedges']}")
    if row["mttr_max_ns"] > mttr_bound_ns:
        reasons.append(
            f"mttr:{row['mttr_max_ns']:.0f}ns>{mttr_bound_ns:.0f}ns"
        )
    return reasons


@dataclass
class ChaosFailure:
    """One schedule that failed the bar, with its replay context."""

    index: int
    plan: FaultPlan
    reasons: list[str] = field(default_factory=list)
    row: dict = field(default_factory=dict)


def run_chaos(
    seeds: int = 25,
    root_seed: int = 1,
    mode: str = "fns",
    flows: int = 5,
    scale: RunScale = QUICK,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    mttr_bound_ns: float = DEFAULT_MTTR_BOUND_NS,
    recovery: bool = True,
) -> tuple[FigureResult, list[ChaosFailure]]:
    """Run ``seeds`` random schedules; return the table and failures.

    ``recovery=False`` runs the same schedules without the reset
    protocol — hard faults then go unrecovered, which is the seeded
    failure the shrinker demo (and its test) minimizes.
    """
    result = FigureResult(
        "Chaos",
        f"chaos search: {mode}, {flows} flows, {seeds} schedules, "
        f"root seed {root_seed} "
        f"(bar: zero violations, MTTR <= {mttr_bound_ns / 1e3:.0f} us)",
        CHAOS_HEADERS,
        notes=(
            "wedges: hard faults still latched at the end of the run; "
            "a FAIL verdict is shrunk to a minimal repro plan"
        ),
    )
    plans = [sample_plan(root_seed, i, scale) for i in range(seeds)]
    specs = [
        PointSpec(
            figure="Chaos",
            runner="chaos_row",
            mode=mode,
            x=index,
            label=f"chaos {mode} {index}",
            seed=derive_seed(root_seed, "Chaos", mode, index),
            payload=(plan, flows, recovery),
        )
        for index, plan in enumerate(plans)
    ]
    failures: list[ChaosFailure] = []
    for spec, row in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        plan = plans[spec.x]
        reasons = failure_reasons(row, mttr_bound_ns)
        result.raw[spec.x] = {
            "plan": plan,
            "timeline": row["timeline"],
            "row": row,
        }
        result.rows.append(
            [
                spec.x,
                len(plan.specs),
                round(row["goodput_gbps"], 2),
                row["injected"],
                row["recoveries"],
                round(row["mttr_max_ns"] / 1e3, 1),
                row["unrecovered_wedges"],
                row["violations"],
                row["outcome"],
                "FAIL" if reasons else "ok",
            ]
        )
        if reasons:
            failures.append(ChaosFailure(spec.x, plan, reasons, row))
    return result, failures


# ----------------------------------------------------------------------
# Schedule shrinking (ddmin)
# ----------------------------------------------------------------------
def _subplan(plan: FaultPlan, specs: list[FaultSpec]) -> FaultPlan:
    # Keep the seed: injector streams are keyed by (seed, component),
    # so specs of untouched components replay identically.
    return FaultPlan(seed=plan.seed, name=f"{plan.name}-min", specs=tuple(specs))


def shrink_plan(
    plan: FaultPlan,
    fails: Callable[[FaultPlan], bool],
) -> tuple[FaultPlan, int]:
    """ddmin the failing ``plan`` to a minimal spec subset.

    ``fails(candidate)`` reruns a candidate plan and reports whether it
    still fails the bar.  Classic delta debugging over the spec tuple:
    try each of ``n`` chunks, then each complement, halving granularity
    on success and doubling it otherwise.  Returns the 1-minimal plan
    (removing any single remaining spec makes the failure vanish) and
    the number of reruns spent.
    """
    specs = list(plan.specs)
    evaluations = 0

    def check(candidate: list[FaultSpec]) -> bool:
        nonlocal evaluations
        evaluations += 1
        return fails(_subplan(plan, candidate))

    if not check(specs):
        # Not reproducible (should not happen: plans are deterministic);
        # refuse to "shrink" to something that does not fail.
        return plan, evaluations
    granularity = 2
    while len(specs) >= 2:
        whole, remainder = divmod(len(specs), granularity)
        bounds = []
        cursor = 0
        for i in range(granularity):
            size = whole + (1 if i < remainder else 0)
            if size:
                bounds.append((cursor, cursor + size))
                cursor += size
        progressed = False
        for lo, hi in bounds:
            subset = specs[lo:hi]
            if len(subset) < len(specs) and check(subset):
                specs, granularity, progressed = subset, 2, True
                break
        if not progressed and granularity > 2:
            for lo, hi in bounds:
                complement = specs[:lo] + specs[hi:]
                if complement and check(complement):
                    specs = complement
                    granularity = max(granularity - 1, 2)
                    progressed = True
                    break
        if not progressed:
            if granularity >= len(specs):
                break
            granularity = min(len(specs), 2 * granularity)
    return _subplan(plan, specs), evaluations


def replay_fails(
    mode: str,
    flows: int,
    recovery: bool,
    scale: RunScale,
    mttr_bound_ns: float,
) -> Callable[[FaultPlan], bool]:
    """The serial rerun predicate the CLI hands to :func:`shrink_plan`."""
    from .points import POINT_RUNNERS

    runner = POINT_RUNNERS["chaos_row"]

    def fails(candidate: FaultPlan) -> bool:
        spec = PointSpec(
            figure="Chaos",
            runner="chaos_row",
            mode=mode,
            x="shrink",
            label="chaos shrink",
            seed=candidate.seed,
            payload=(candidate, flows, recovery),
        )
        return bool(failure_reasons(runner(spec, scale), mttr_bound_ns))

    return fails

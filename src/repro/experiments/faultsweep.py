"""The fault sweep: every injector family vs. the safety bar.

One iperf baseline plus one row per fault family, each run under its
own :class:`~repro.verify.InvariantMonitor` (a violation aborts the
sweep — that is the acceptance bar: faults may cost throughput, never
safety).  Rows report goodput, drops, the hardened drivers' recovery
work (retries, degraded flushes) and the number of injected faults, so
the table *shows* the throughput-for-safety trade.

Runs are hardened themselves: ``strict_until`` turns a dead workload
into an error instead of a zero row, and the simulator watchdog
converts a deadlock into a pending-event trace.
"""

from __future__ import annotations

from typing import Optional

from ..faults import FaultPlan, FaultSpec
from ..parallel import PointSpec, derive_seed, run_points
from .figures import FigureResult
from .settings import FULL, RunScale

__all__ = ["fault_sweep", "sweep_plans"]

FAULTS_HEADERS = [
    "fault",
    "gbps",
    "drop%",
    "retries",
    "degraded",
    "faults",
    "violations",
]

# Windowed faults open shortly after warm-up traffic is flowing; the
# offsets are fractions of the warm-up so the sweep scales with
# QUICK/FULL.  (The per-row watchdog interval lives with the fault_row
# point runner in repro.experiments.points.)


def sweep_plans(
    seed: int, scale: RunScale = FULL
) -> list[tuple[str, FaultPlan]]:
    """One representative plan per injector family."""
    open_ns = 0.5 * scale.warmup_ns
    horizon = scale.warmup_ns + scale.measure_ns
    flap_start = scale.warmup_ns + 0.1 * scale.measure_ns
    flap_end = flap_start + 0.1 * scale.measure_ns
    stall_start = scale.warmup_ns + 0.2 * scale.measure_ns
    stall_end = stall_start + 0.15 * scale.measure_ns
    return [
        (
            "invalidation",
            FaultPlan(
                seed=seed,
                name="invalidation",
                specs=(
                    FaultSpec(
                        "invalidation",
                        "drop-completion",
                        open_ns,
                        horizon,
                        probability=0.25,
                    ),
                    FaultSpec(
                        "invalidation",
                        "partial-completion",
                        open_ns,
                        horizon,
                        probability=0.25,
                    ),
                    FaultSpec(
                        "invalidation",
                        "delay-completion",
                        open_ns,
                        horizon,
                        probability=0.5,
                        magnitude=2_000.0,
                    ),
                ),
            ),
        ),
        (
            "pcie",
            FaultPlan(
                seed=seed,
                name="pcie",
                specs=(
                    FaultSpec("pcie", "link-flap", flap_start, flap_end),
                    FaultSpec(
                        "pcie",
                        "lane-loss",
                        stall_end,
                        horizon,
                        magnitude=2.0,
                    ),
                    FaultSpec(
                        "pcie",
                        "nack-replay",
                        open_ns,
                        horizon,
                        probability=0.2,
                        magnitude=2_000.0,
                    ),
                ),
            ),
        ),
        (
            "nic",
            FaultPlan(
                seed=seed,
                name="nic",
                specs=(
                    FaultSpec("nic", "ring-stall", stall_start, stall_end),
                    FaultSpec(
                        "nic",
                        "doorbell-drop",
                        open_ns,
                        horizon,
                        probability=0.1,
                        magnitude=100_000.0,
                    ),
                ),
            ),
        ),
        (
            "net",
            FaultPlan(
                seed=seed,
                name="net",
                specs=(
                    FaultSpec(
                        "net",
                        "loss",
                        open_ns,
                        horizon,
                        probability=0.005,
                    ),
                    FaultSpec(
                        "net",
                        "reorder",
                        open_ns,
                        horizon,
                        probability=0.05,
                        magnitude=10_000.0,
                    ),
                ),
            ),
        ),
    ]


def fault_sweep(
    scale: RunScale = FULL,
    seed: int = 1,
    mode: str = "fns",
    flows: int = 5,
    plan: Optional[FaultPlan] = None,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
) -> FigureResult:
    """Baseline + per-family fault rows, each under the monitor.

    With ``plan`` given, sweeps only that plan (the CLI's ``--faults
    plan.json`` path); otherwise the built-in per-family plans.  Rows
    are independent (each carries its own monitor and plan inside the
    point), so ``jobs > 1`` fans them across the shared process pool —
    plans are built here, in the parent, and are byte-identical in
    every process.
    """
    result = FigureResult(
        "Faults",
        f"fault sweep: {mode}, {flows} flows, seed {seed} "
        "(safety bar: zero violations)",
        FAULTS_HEADERS,
        notes=(
            "retries/degraded: hardened-driver recovery work; a "
            "violation aborts the sweep"
        ),
    )
    plans = (
        [(plan.name, plan)]
        if plan is not None
        else sweep_plans(seed, scale)
    )
    specs = [
        PointSpec(
            figure="Faults",
            runner="fault_row",
            mode=mode,
            x=label,
            label=f"faults {mode} {label}",
            seed=derive_seed(seed, "Faults", mode, label),
            payload=(row_plan, flows),
        )
        for label, row_plan in [("none", None)] + plans
    ]
    by_label = dict([("none", None)] + plans)
    for spec, row in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        point = row["point"]
        row_plan = by_label[spec.x]
        if row_plan is not None:
            result.raw[spec.x] = {
                "plan": row_plan,
                "timeline": row["timeline"],
                "point": point,
            }
        result.rows.append(
            [
                spec.x,
                round(point.rx_goodput_gbps, 2),
                round(100 * point.drop_fraction, 3),
                point.extras.get("invalidation_retries", 0),
                point.extras.get("degraded_flushes", 0),
                row["injected"],
                row["violations"],
            ]
        )
    return result

"""One runner per paper figure.

Each ``fig*`` function sweeps the figure's x-axis for the relevant
protection modes and returns a :class:`FigureResult` whose rows are the
series the paper plots.  The benchmark suite prints these tables; the
integration tests assert the qualitative shapes (who wins, what is
zero, what grows).

Sweeps are declarative: each figure builds a list of
:class:`~repro.parallel.spec.PointSpec` cells and hands them to
:func:`repro.parallel.run_points`, which runs them serially by default
or fans them across worker processes when ``jobs > 1`` — with
byte-identical rows, raw results and metric phases either way.  Row
formatting always happens here, in the parent, from the returned
point objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.locality import summarize_locality
from ..analysis.model import ModelPoint, fit_l0_lm, model_error
from ..analysis.report import format_figure
from ..obs.hooks import current_registry
from ..parallel import PointSpec, derive_seed, run_points
from .settings import FULL, RunScale


def _obs_phase(label: str) -> None:
    """Label the next experiment point's metrics phase (if observing)."""
    registry = current_registry()
    if registry is not None:
        registry.begin_phase(label)

__all__ = [
    "FigureResult",
    "fig2_flows",
    "fig3_ring",
    "model_fit",
    "fig7_fns_flows",
    "fig8_fns_ring",
    "fig9_rpc_latency",
    "fig10_rxtx",
    "fig11_redis",
    "fig11_nginx",
    "fig11_spdk",
    "fig12_ablation",
]


@dataclass
class FigureResult:
    """A reproduced figure: table rows plus free-form raw results."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""
    raw: dict = field(default_factory=dict)

    def format(self) -> str:
        return format_figure(
            f"{self.figure_id}: {self.title}", self.headers, self.rows, self.notes
        )

    def series(self, mode: str) -> list[list]:
        return [row for row in self.rows if row[0] == mode]

    def row(self, mode: str, x) -> list:
        for candidate in self.rows:
            if candidate[0] == mode and candidate[1] == x:
                return candidate
        raise KeyError((mode, x))


IPERF_HEADERS = [
    "mode",
    "x",
    "gbps",
    "drop%",
    "iotlb/pg",
    "m1/pg",
    "m2/pg",
    "m3/pg",
    "M",
    "tx/pg",
    "loc_p95",
    "loc>64%",
]


def _iperf_row(mode: str, x, result) -> list:
    locality = summarize_locality(result.allocation_trace)
    return [
        mode,
        x,
        round(result.rx_goodput_gbps, 1),
        round(result.drop_fraction * 100, 3),
        round(result.iotlb_misses_per_page, 2),
        round(result.ptcache_l1_misses_per_page, 3),
        round(result.ptcache_l2_misses_per_page, 3),
        round(result.ptcache_l3_misses_per_page, 3),
        round(result.memory_reads_per_page, 2),
        round(result.tx_packets_per_page, 2),
        round(locality.p95_distance, 1),
        round(locality.fraction_above_64 * 100, 1),
    ]


def _grid_specs(
    figure_id: str,
    runner: str,
    modes: Sequence[str],
    x_name: str,
    x_values: Sequence,
    seed: int,
) -> list[PointSpec]:
    """The mode × x grid as point specs, in serial sweep order."""
    return [
        PointSpec(
            figure=figure_id,
            runner=runner,
            mode=mode,
            x=x,
            label=f"{figure_id} {mode} {x_name}={x}",
            seed=derive_seed(seed, figure_id, mode, x),
        )
        for mode in modes
        for x in x_values
    ]


def _sweep_iperf(
    figure_id: str,
    title: str,
    modes: Sequence[str],
    x_name: str,
    x_values: Sequence[int],
    scale: RunScale,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    headers = [x_name if h == "x" else h for h in IPERF_HEADERS]
    result = FigureResult(figure_id, title, headers)
    runner = "iperf_flows" if x_name == "flows" else "iperf_ring"
    specs = _grid_specs(figure_id, runner, modes, x_name, x_values, seed)
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(_iperf_row(spec.mode, spec.x, point))
        result.raw[(spec.mode, spec.x)] = point
    return result


# ----------------------------------------------------------------------
# Figures 2 and 3: Linux strict vs IOMMU off (microbenchmarks)
# ----------------------------------------------------------------------
def fig2_flows(
    modes: Sequence[str] = ("off", "strict"),
    flows: Sequence[int] = (5, 10, 20, 40),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 2: throughput/drops/misses/locality vs number of flows."""
    return _sweep_iperf(
        "Fig 2", "Linux strict vs IOMMU off, varying flows",
        modes, "flows", flows, scale, jobs=jobs, chunk=chunk, seed=seed,
    )


def fig3_ring(
    modes: Sequence[str] = ("off", "strict"),
    ring_sizes: Sequence[int] = (256, 512, 1024, 2048),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 3: same metrics vs Rx ring buffer size (5 flows)."""
    return _sweep_iperf(
        "Fig 3", "Linux strict vs IOMMU off, varying ring size",
        modes, "ring", ring_sizes, scale, jobs=jobs, chunk=chunk, seed=seed,
    )


# ----------------------------------------------------------------------
# The Section 2.2 analytic model
# ----------------------------------------------------------------------
def model_fit(
    scale: RunScale = FULL,
    flows: Sequence[int] = (5, 10, 20, 40),
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Validate §2.2's model T = p/(l0 + M·lm) against the simulator.

    Two checks, mirroring the paper: (1) with the paper's fitted
    constants (l0 = 65 ns, lm = 197 ns) the model predicts the
    simulator's measured strict-mode throughput from its measured M;
    (2) re-fitting the constants from the simulated points (non-
    negative least squares over the sweep) recovers the same
    magnitudes.
    """
    specs = [
        PointSpec(
            figure="Model",
            runner="iperf_flows",
            mode="strict",
            x=count,
            label=f"Model strict flows={count}",
            seed=derive_seed(seed, "Model", "strict", count),
        )
        for count in flows
    ]
    points: dict[int, ModelPoint] = {}
    for spec, measured in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        points[spec.x] = ModelPoint(
            packet_bytes=4096,
            memory_reads=measured.memory_reads_per_page,
            measured_gbps=measured.rx_goodput_gbps,
        )
    l0, lm = fit_l0_lm(list(points.values()))
    result = FigureResult(
        "Model",
        "Section 2.2 throughput model: paper constants vs simulation",
        [
            "flows",
            "M",
            "measured_gbps",
            "paper_model_gbps",
            "paper_err%",
            "refit_model_gbps",
        ],
        notes=f"refit l0 = {l0:.0f} ns, lm = {lm:.0f} ns "
        "(paper: l0 = 65 ns, lm = 197 ns)",
    )
    result.raw["l0_ns"] = l0
    result.raw["lm_ns"] = lm
    for count, point in points.items():
        paper_error = model_error(point, 65.0, 197.0, link_gbps=100.0)
        paper_predicted = min(
            point.packet_bytes * 8 / (65.0 + point.memory_reads * 197.0),
            100.0,
        )
        refit_predicted = min(
            point.packet_bytes * 8 / (l0 + point.memory_reads * lm), 100.0
        )
        result.rows.append(
            [
                count,
                round(point.memory_reads, 2),
                round(point.measured_gbps, 1),
                round(paper_predicted, 1),
                round(paper_error * 100, 1),
                round(refit_predicted, 1),
            ]
        )
        result.raw[("error", count)] = paper_error
    return result


# ----------------------------------------------------------------------
# Figures 7 and 8: F&S on the microbenchmarks
# ----------------------------------------------------------------------
def fig7_fns_flows(
    modes: Sequence[str] = ("off", "strict", "fns"),
    flows: Sequence[int] = (5, 10, 20, 40),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 7: F&S vs Linux strict vs IOMMU off, varying flows."""
    return _sweep_iperf(
        "Fig 7", "F&S eliminates memory-protection overheads (flows)",
        modes, "flows", flows, scale, jobs=jobs, chunk=chunk, seed=seed,
    )


def fig8_fns_ring(
    modes: Sequence[str] = ("off", "strict", "fns"),
    ring_sizes: Sequence[int] = (256, 512, 1024, 2048),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 8: F&S locality holds as the IO working set grows."""
    return _sweep_iperf(
        "Fig 8", "F&S under increasing ring sizes",
        modes, "ring", ring_sizes, scale, jobs=jobs, chunk=chunk, seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 9: RPC tail latency under colocation
# ----------------------------------------------------------------------
def fig9_rpc_latency(
    modes: Sequence[str] = ("off", "strict", "fns"),
    rpc_sizes: Sequence[int] = (128, 1024, 4096, 32768),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 9: netperf RPC percentiles colocated with iperf."""
    result = FigureResult(
        "Fig 9",
        "RPC tail latency (us) colocated with iperf",
        ["mode", "rpc_bytes", "n", "p50", "p90", "p99", "p99.9", "p99.99", "bg_gbps"],
    )
    specs = _grid_specs("Fig 9", "netperf_rpc", modes, "rpc", rpc_sizes, seed)
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        us = {k: v / 1000 for k, v in point.percentiles_ns.items()}
        result.rows.append(
            [
                spec.mode,
                spec.x,
                point.rpc_count,
                round(us.get(50.0, 0.0), 1),
                round(us.get(90.0, 0.0), 1),
                round(us.get(99.0, 0.0), 1),
                round(us.get(99.9, 0.0), 1),
                round(us.get(99.99, 0.0), 1),
                round(point.background_gbps, 1),
            ]
        )
        result.raw[(spec.mode, spec.x)] = point
    return result


# ----------------------------------------------------------------------
# Figure 10: concurrent Rx and Tx data
# ----------------------------------------------------------------------
def fig10_rxtx(
    modes: Sequence[str] = ("off", "strict", "fns"),
    core_counts: Sequence[int] = (1, 2, 4),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 10: Rx/Tx interference on the Ice Lake testbed."""
    result = FigureResult(
        "Fig 10",
        "Concurrent Rx and Tx iperf (Ice Lake)",
        ["mode", "cores", "rx_gbps", "tx_gbps", "drop%"],
    )
    specs = _grid_specs(
        "Fig 10", "bidir_iperf", modes, "cores", core_counts, seed
    )
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(
            [
                spec.mode,
                spec.x,
                round(point.rx_goodput_gbps, 1),
                round(point.tx_goodput_gbps, 1),
                round(point.drop_fraction * 100, 2),
            ]
        )
        result.raw[(spec.mode, spec.x)] = point
    return result


# ----------------------------------------------------------------------
# Figure 11: real applications
# ----------------------------------------------------------------------
def fig11_redis(
    modes: Sequence[str] = ("off", "strict", "fns"),
    value_sizes: Sequence[int] = (4096, 8192, 32768, 131072),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 11a: Redis 100% SET throughput by value size."""
    result = FigureResult(
        "Fig 11a",
        "Redis SET throughput",
        ["mode", "value_bytes", "gbps", "kreq/s", "iotlb/pg"],
    )
    specs = _grid_specs("Fig 11a", "redis", modes, "value", value_sizes, seed)
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(
            [
                spec.mode,
                spec.x,
                round(point.goodput_gbps, 1),
                round(point.requests_per_second / 1000, 0),
                round(point.iotlb_misses_per_page, 2),
            ]
        )
        result.raw[(spec.mode, spec.x)] = point
    return result


def fig11_nginx(
    modes: Sequence[str] = ("off", "strict", "fns"),
    page_sizes: Sequence[int] = (131072, 524288, 2097152),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 11b: Nginx page-serving throughput by page size."""
    result = FigureResult(
        "Fig 11b",
        "Nginx throughput",
        ["mode", "page_bytes", "gbps", "req/s"],
    )
    specs = _grid_specs("Fig 11b", "nginx", modes, "page", page_sizes, seed)
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(
            [
                spec.mode,
                spec.x,
                round(point.goodput_gbps, 1),
                round(point.requests_per_second, 0),
            ]
        )
        result.raw[(spec.mode, spec.x)] = point
    return result


def fig11_spdk(
    modes: Sequence[str] = ("off", "strict", "fns"),
    block_sizes: Sequence[int] = (32768, 65536, 262144),
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 11c: SPDK remote read throughput by block size."""
    result = FigureResult(
        "Fig 11c",
        "SPDK remote read throughput",
        ["mode", "block_bytes", "gbps", "kiops", "iotlb/pg"],
    )
    specs = _grid_specs("Fig 11c", "spdk", modes, "block", block_sizes, seed)
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(
            [
                spec.mode,
                spec.x,
                round(point.goodput_gbps, 1),
                round(point.iops / 1000, 1),
                round(point.iotlb_misses_per_page, 2),
            ]
        )
        result.raw[(spec.mode, spec.x)] = point
    return result


# ----------------------------------------------------------------------
# Figure 12: ablation of F&S's ideas
# ----------------------------------------------------------------------
def fig12_ablation(
    modes: Sequence[str] = ("strict", "linux+A", "linux+B", "fns", "off"),
    value_bytes: int = 8192,
    scale: RunScale = FULL,
    jobs: Optional[int] = None,
    chunk: Optional[int] = None,
    seed: int = 1,
) -> FigureResult:
    """Fig 12: each F&S idea is necessary (Redis, 8 KB values).

    A = preserve PTcaches; B = contiguous IOVA + batched invalidation.
    """
    result = FigureResult(
        "Fig 12",
        "Contribution of each F&S idea (Redis 8 KB SET)",
        ["mode", "value_bytes", "gbps", "l3/pg", "iotlb/pg"],
    )
    specs = [
        PointSpec(
            figure="Fig 12",
            runner="redis",
            mode=mode,
            x=value_bytes,
            label=f"Fig 12 {mode}",
            seed=derive_seed(seed, "Fig 12", mode, value_bytes),
        )
        for mode in modes
    ]
    for spec, point in zip(specs, run_points(specs, scale, jobs=jobs, chunk=chunk)):
        result.rows.append(
            [
                spec.mode,
                value_bytes,
                round(point.goodput_gbps, 1),
                round(point.ptcache_l3_misses_per_page, 3),
                round(point.iotlb_misses_per_page, 2),
            ]
        )
        result.raw[spec.mode] = point
    return result

"""Request/response application engine.

All four applications the paper evaluates above raw iperf — netperf RPC
(Fig 9), Redis SET (Fig 11a), Nginx/wrk (Fig 11b) and SPDK remote reads
(Fig 11c) — are request/response exchanges over TCP that differ only in
who initiates, message sizes, pipelining depth, and application CPU
cost.  This engine models that shape over a :class:`Testbed`:

* ``initiator="remote"`` (netperf, Redis): the peer keeps
  ``pipeline_depth`` requests in flight on the request flow (bulk for
  Redis SETs); the measured host's application replies on the response
  flow after its per-request CPU cost.  Latency is recorded at the
  remote from request issue to full response delivery — the netperf RR
  measurement.

* ``initiator="host"`` (Nginx client, SPDK client): the measured host
  keeps ``pipeline_depth`` small requests outstanding; the peer
  responds with bulk data (web pages / storage blocks) that arrives
  through the measured host's Rx datapath — whose memory protection
  cost is exactly what Fig 11 studies.

What the IOMMU sees — the Rx/Tx DMA pattern, the reply-per-request Tx
traffic that inflates IOTLB contention at small value sizes (§4.4) —
emerges from the exchange structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.metrics import LatencyRecorder
from ..host.testbed import Testbed

__all__ = ["RequestResponseApp", "AppStats", "segments_for"]

_APP_FLOW_BASE = 4000


def segments_for(message_bytes: int, mtu_bytes: int) -> tuple[int, int]:
    """(segment_count, segment_bytes) for a message over an MTU."""
    if message_bytes <= 0:
        raise ValueError("message must be non-empty")
    if message_bytes <= mtu_bytes:
        return 1, message_bytes
    count = -(-message_bytes // mtu_bytes)
    return count, mtu_bytes


@dataclass
class AppStats:
    """Counters the experiment runner snapshots around the window."""

    requests_completed: int = 0
    bulk_bytes_delivered: int = 0


class _Connection:
    __slots__ = (
        "core",
        "to_host_flow",
        "to_remote_flow",
        "host_rx_pending",
        "remote_rx_pending",
        "inflight_starts",
    )

    def __init__(self, core: int, to_host_flow: int, to_remote_flow: int):
        self.core = core
        self.to_host_flow = to_host_flow
        self.to_remote_flow = to_remote_flow
        self.host_rx_pending = 0  # segments until current message done
        self.remote_rx_pending = 0
        self.inflight_starts: list[float] = []


class RequestResponseApp:
    """Drives one app workload over a testbed (one app per testbed)."""

    def __init__(
        self,
        testbed: Testbed,
        initiator: str,
        request_bytes: int,
        response_bytes: int,
        pipeline_depth: int = 1,
        connections: int = 1,
        cores: Optional[list[int]] = None,
        host_app_cost_ns: Callable[[int], float] = lambda message_bytes: 0.0,
        think_ns: float = 0.0,
        record_latency: bool = False,
    ) -> None:
        if initiator not in ("remote", "host"):
            raise ValueError("initiator must be 'remote' or 'host'")
        self.testbed = testbed
        self.initiator = initiator
        self.pipeline_depth = pipeline_depth
        self.host_app_cost_ns = host_app_cost_ns
        self.think_ns = think_ns
        self.stats = AppStats()
        self.latency = LatencyRecorder() if record_latency else None
        mtu = testbed.config.mtu_bytes
        if initiator == "remote":
            # Bulk request toward the host; small response back.
            self.to_host_segments, to_host_seg_bytes = segments_for(
                request_bytes, mtu
            )
            self.to_remote_segments, to_remote_seg_bytes = segments_for(
                response_bytes, mtu
            )
            self.bulk_bytes = request_bytes
        else:
            # Small request from the host; bulk response back to it.
            self.to_remote_segments, to_remote_seg_bytes = segments_for(
                request_bytes, mtu
            )
            self.to_host_segments, to_host_seg_bytes = segments_for(
                response_bytes, mtu
            )
            self.bulk_bytes = response_bytes
        host = testbed.host
        remote = testbed.remote
        self.connections: list[_Connection] = []
        self._by_to_host_flow: dict[int, _Connection] = {}
        self._by_to_remote_flow: dict[int, _Connection] = {}
        num_cores = testbed.config.num_cores
        for index in range(connections):
            core = (
                cores[index % len(cores)]
                if cores
                else index % num_cores
            )
            to_host_flow = _APP_FLOW_BASE + 2 * index
            to_remote_flow = _APP_FLOW_BASE + 2 * index + 1
            host.register_rx_flow(to_host_flow, core)
            remote.register_sender(
                to_host_flow, unlimited=False, segment_bytes=to_host_seg_bytes
            )
            host.register_tx_flow(
                to_remote_flow,
                core,
                unlimited=False,
                segment_bytes=to_remote_seg_bytes,
            )
            remote.register_receiver(to_remote_flow)
            connection = _Connection(core, to_host_flow, to_remote_flow)
            connection.host_rx_pending = self.to_host_segments
            connection.remote_rx_pending = self.to_remote_segments
            self.connections.append(connection)
            self._by_to_host_flow[to_host_flow] = connection
            self._by_to_remote_flow[to_remote_flow] = connection
        if host.on_delivery is not None or remote.on_delivery is not None:
            raise RuntimeError("testbed already has an app attached")
        host.on_delivery = self._on_host_delivery
        remote.on_delivery = self._on_remote_delivery
        # Kick off the pipeline once the simulation starts.
        testbed.sim.schedule_after(0.0, self._start)

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def _start(self) -> None:
        for connection in self.connections:
            for _ in range(self.pipeline_depth):
                self._issue_request(connection)

    def _issue_request(self, connection: _Connection) -> None:
        now = self.testbed.sim.now
        connection.inflight_starts.append(now)
        if self.initiator == "remote":
            sender = self.testbed.remote.sender(connection.to_host_flow)
            sender.enqueue_segments(self.to_host_segments)
            self.testbed.remote.pump(connection.to_host_flow)
        else:
            host = self.testbed.host
            binding_sender = host._flows[connection.to_remote_flow].sender
            binding_sender.enqueue_segments(self.to_remote_segments)
            host.pump_tx_flow(connection.to_remote_flow)

    # ------------------------------------------------------------------
    # Host-side deliveries (data arriving at the measured host)
    # ------------------------------------------------------------------
    def _on_host_delivery(self, flow_id: int, segments: int) -> None:
        connection = self._by_to_host_flow.get(flow_id)
        if connection is None:
            return
        remaining = segments
        while remaining > 0:
            take = min(remaining, connection.host_rx_pending)
            connection.host_rx_pending -= take
            remaining -= take
            if connection.host_rx_pending == 0:
                connection.host_rx_pending = self.to_host_segments
                self._host_message_complete(connection)

    def _host_message_complete(self, connection: _Connection) -> None:
        host = self.testbed.host
        cost = self.host_app_cost_ns(self.bulk_bytes)
        if self.initiator == "remote":
            # A full request arrived: the app processes it, then sends
            # the response through the Tx datapath.
            self.stats.bulk_bytes_delivered += self.bulk_bytes

            def respond(conn=connection):
                sender = host._flows[conn.to_remote_flow].sender
                sender.enqueue_segments(self.to_remote_segments)
                host.pump_tx_flow(conn.to_remote_flow)

            host.cores.run(connection.core, cost, respond)
        else:
            # A full response arrived: count it and issue the next
            # request after the app's processing cost.
            self.stats.bulk_bytes_delivered += self.bulk_bytes
            self._complete_request(connection)
            host.cores.run(
                connection.core,
                cost + self.think_ns,
                lambda conn=connection: self._issue_request(conn),
            )

    # ------------------------------------------------------------------
    # Remote-side deliveries
    # ------------------------------------------------------------------
    def _on_remote_delivery(self, flow_id: int, segments: int) -> None:
        connection = self._by_to_remote_flow.get(flow_id)
        if connection is None:
            return
        remaining = segments
        while remaining > 0:
            take = min(remaining, connection.remote_rx_pending)
            connection.remote_rx_pending -= take
            remaining -= take
            if connection.remote_rx_pending == 0:
                connection.remote_rx_pending = self.to_remote_segments
                self._remote_message_complete(connection)

    def _remote_message_complete(self, connection: _Connection) -> None:
        if self.initiator == "remote":
            # The response to one of our requests: transaction done.
            self._complete_request(connection)
            if self.think_ns > 0:
                self.testbed.sim.schedule_after(
                    self.think_ns,
                    lambda conn=connection: self._issue_request(conn),
                )
            else:
                self._issue_request(connection)
        else:
            # The host's request arrived: respond with bulk data.
            sender = self.testbed.remote.sender(connection.to_host_flow)
            sender.enqueue_segments(self.to_host_segments)
            self.testbed.remote.pump(connection.to_host_flow)

    # ------------------------------------------------------------------
    def _complete_request(self, connection: _Connection) -> None:
        self.stats.requests_completed += 1
        if connection.inflight_starts:
            start = connection.inflight_starts.pop(0)
            if self.latency is not None:
                self.latency.record(self.testbed.sim.now - start)

"""SPDK remote-storage read workload (Fig 11c).

SPDK client threads on the measured host issue block read requests
(32-256 KB) against SPDK server instances on the peer, with an IO
depth of 8 requests per core (the depth the paper — and i10/blk-switch
before it — found saturates throughput).  Block data arrives through
the measured host's Rx datapath; per-read request packets form the Tx
traffic that, at small block sizes, inflates IOTLB contention (§4.4's
~1.5x IOTLB miss increase at 32 KB vs 256 KB blocks).

SPDK's userspace polling has very low per-IO CPU cost, so throughput
is protection-bound, not CPU-bound.

Setup follows §4.2: 8 cores, 9 K MTU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..host.config import HostConfig
from ..host.testbed import Testbed
from .base import RequestResponseApp

__all__ = ["run_spdk", "SpdkResult", "spdk_per_io_cost_ns"]

NVME_READ_CMD_BYTES = 128  # command capsule over TCP


def spdk_per_io_cost_ns(message_bytes: int) -> float:
    """Userspace polling completion cost: tiny and size-independent."""
    return 600.0


@dataclass
class SpdkResult:
    mode: str
    block_bytes: int
    goodput_gbps: float
    iops: float
    iotlb_misses_per_page: float


def run_spdk(
    mode: str,
    block_bytes: int,
    io_depth: int = 8,
    num_cores: int = 8,
    mtu_bytes: int = 9000,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 10_000_000.0,
    allocator_aging_iovas: int = 98304,
    **config_overrides,
) -> SpdkResult:
    """Run one (mode, block size) SPDK point."""
    config = HostConfig.cascade_lake(
        mode=mode,
        num_cores=num_cores,
        mtu_bytes=mtu_bytes,
        allocator_aging_iovas=allocator_aging_iovas,
        **config_overrides,
    )
    testbed = Testbed(config)
    app = RequestResponseApp(
        testbed,
        initiator="host",
        request_bytes=NVME_READ_CMD_BYTES,
        response_bytes=block_bytes,
        pipeline_depth=io_depth,
        connections=num_cores,
        host_app_cost_ns=spdk_per_io_cost_ns,
    )
    testbed.remote.start_all()
    testbed.sim.run(until=warmup_ns)
    requests_before = app.stats.requests_completed
    bytes_before = app.stats.bulk_bytes_delivered
    snapshot = (
        testbed.host.iommu.stats.snapshot()
        if testbed.host.iommu is not None
        else None
    )
    pages_before = testbed.host.rx_data_pages
    testbed.sim.run(until=warmup_ns + measure_ns)
    ios = app.stats.requests_completed - requests_before
    goodput_bytes = app.stats.bulk_bytes_delivered - bytes_before
    pages = testbed.host.rx_data_pages - pages_before
    iotlb = 0.0
    if snapshot is not None and pages > 0:
        iotlb = (
            testbed.host.iommu.stats.delta(snapshot).per_page(pages).iotlb
        )
    return SpdkResult(
        mode=mode,
        block_bytes=block_bytes,
        goodput_gbps=goodput_bytes * 8 / measure_ns,
        iops=ios / (measure_ns / 1e9),
        iotlb_misses_per_page=iotlb,
    )

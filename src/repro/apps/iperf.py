"""iperf: the paper's throughput microbenchmark (Figs 2, 3, 7, 8, 10).

One unlimited DCTCP flow per registration; the paper's default is one
flow per core with five cores.  ``run_iperf`` builds a testbed for one
(mode, flows, ring size, ...) point and returns the measured
:class:`TestbedResult`; ``run_bidirectional_iperf`` adds Tx-direction
flows on separate cores for the Fig 10 Rx/Tx-interference experiment.
"""

from __future__ import annotations

from typing import Optional

from ..host.config import HostConfig
from ..host.testbed import Testbed, TestbedResult

__all__ = ["run_iperf", "run_bidirectional_iperf"]


def run_iperf(
    mode: str,
    flows: int = 5,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 10_000_000.0,
    config: Optional[HostConfig] = None,
    strict_until: bool = False,
    watchdog_interval_ns: Optional[float] = None,
    **config_overrides,
) -> TestbedResult:
    """Run one iperf point; returns the testbed measurement.

    ``strict_until`` and ``watchdog_interval_ns`` harden the run
    against dead workloads and deadlocks (see :mod:`repro.sim`); the
    fault-sweep experiment enables both.
    """
    if config is None:
        config = HostConfig.cascade_lake(mode=mode, **config_overrides)
    testbed = Testbed(config, watchdog_interval_ns=watchdog_interval_ns)
    testbed.add_rx_flows(flows)
    return testbed.run(
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        strict_until=strict_until,
    )


def run_bidirectional_iperf(
    mode: str,
    rx_cores: int,
    tx_cores: int,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 10_000_000.0,
    config: Optional[HostConfig] = None,
    **config_overrides,
) -> TestbedResult:
    """Fig 10: concurrent Rx and Tx data flows on disjoint cores.

    One flow per core in each direction, Ice Lake host by default.
    """
    if config is None:
        config = HostConfig.ice_lake(
            mode=mode, num_cores=rx_cores + tx_cores, **config_overrides
        )
    testbed = Testbed(config)
    testbed.add_rx_flows(rx_cores, cores=list(range(rx_cores)))
    testbed.add_tx_flows(
        tx_cores, cores=list(range(rx_cores, rx_cores + tx_cores))
    )
    return testbed.run(warmup_ns=warmup_ns, measure_ns=measure_ns)

"""Application workloads: iperf, netperf RPC, Redis, Nginx, SPDK."""

from .base import AppStats, RequestResponseApp, segments_for
from .iperf import run_bidirectional_iperf, run_iperf
from .netperf import NetperfResult, run_netperf_rpc
from .nginx import NginxResult, run_nginx
from .redis import RedisResult, run_redis
from .spdk import SpdkResult, run_spdk

__all__ = [
    "RequestResponseApp",
    "AppStats",
    "segments_for",
    "run_iperf",
    "run_bidirectional_iperf",
    "run_netperf_rpc",
    "NetperfResult",
    "run_redis",
    "RedisResult",
    "run_nginx",
    "NginxResult",
    "run_spdk",
    "SpdkResult",
]

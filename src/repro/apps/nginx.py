"""Nginx/wrk web-serving workload (Fig 11b).

wrk-style clients fetch 128 KB - 2 MB web pages (the paper cites ~2 MB
as today's average page weight) over persistent connections.  The
measured host is the end receiving the bulk page data through its Rx
datapath, sending a small HTTP GET per transaction; per-page HTTP
processing costs cap application throughput around 90 Gbps even
without memory protection, matching the paper's observation that Nginx
is partly application-limited.

Setup follows §4.2: 8 cores, 9 K MTU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..host.config import HostConfig
from ..host.testbed import Testbed
from .base import RequestResponseApp

__all__ = ["run_nginx", "NginxResult", "nginx_request_cost_ns"]

HTTP_GET_BYTES = 256  # request line + headers


def nginx_request_cost_ns(message_bytes: int) -> float:
    """Per-transaction HTTP processing: parsing, headers, buffers."""
    return 9_000.0 + 0.035 * message_bytes


@dataclass
class NginxResult:
    mode: str
    page_bytes: int
    goodput_gbps: float
    requests_per_second: float


def run_nginx(
    mode: str,
    page_bytes: int,
    connections_per_core: int = 4,
    pipeline_depth: int = 2,
    num_cores: int = 8,
    mtu_bytes: int = 9000,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 10_000_000.0,
    allocator_aging_iovas: int = 98304,
    **config_overrides,
) -> NginxResult:
    """Run one (mode, page size) Nginx point."""
    config = HostConfig.cascade_lake(
        mode=mode,
        num_cores=num_cores,
        mtu_bytes=mtu_bytes,
        allocator_aging_iovas=allocator_aging_iovas,
        **config_overrides,
    )
    testbed = Testbed(config)
    app = RequestResponseApp(
        testbed,
        initiator="host",
        request_bytes=HTTP_GET_BYTES,
        response_bytes=page_bytes,
        pipeline_depth=pipeline_depth,
        connections=connections_per_core * num_cores,
        host_app_cost_ns=nginx_request_cost_ns,
    )
    testbed.remote.start_all()
    testbed.sim.run(until=warmup_ns)
    requests_before = app.stats.requests_completed
    bytes_before = app.stats.bulk_bytes_delivered
    testbed.sim.run(until=warmup_ns + measure_ns)
    requests = app.stats.requests_completed - requests_before
    goodput_bytes = app.stats.bulk_bytes_delivered - bytes_before
    return NginxResult(
        mode=mode,
        page_bytes=page_bytes,
        goodput_gbps=goodput_bytes * 8 / measure_ns,
        requests_per_second=requests / (measure_ns / 1e9),
    )

"""Redis SET workload (Fig 11a).

One Redis server instance per core on the measured host; remote client
threads issue 100% SET requests with 4 B keys and 4-128 KB values,
keeping 32 requests pipelined per connection (the paper finds that
depth saturates 100 Gbps).  The measured host *receives* the values
(Rx-datapath bound) and sends a small +OK reply per request — the
reply-per-request Tx traffic that inflates IOTLB contention at small
value sizes, the §4.4 gap.

Setup follows §4.2: 8 cores, 9 K MTU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..host.config import HostConfig
from ..host.testbed import Testbed
from .base import RequestResponseApp

__all__ = ["run_redis", "RedisResult", "redis_server_cost_ns"]

REDIS_REPLY_BYTES = 64  # "+OK\r\n" plus protocol/TCP framing


def redis_server_cost_ns(message_bytes: int) -> float:
    """Per-SET server CPU: fixed command cost + value memcpy."""
    return 1_200.0 + 0.03 * message_bytes


@dataclass
class RedisResult:
    mode: str
    value_bytes: int
    goodput_gbps: float
    requests_per_second: float
    iotlb_misses_per_page: float
    ptcache_l3_misses_per_page: float


def run_redis(
    mode: str,
    value_bytes: int,
    connections_per_core: int = 2,
    pipeline_depth: int = 32,
    num_cores: int = 8,
    mtu_bytes: int = 9000,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 10_000_000.0,
    allocator_aging_iovas: int = 98304,
    **config_overrides,
) -> RedisResult:
    """Run one (mode, value size) Redis point."""
    config = HostConfig.cascade_lake(
        mode=mode,
        num_cores=num_cores,
        mtu_bytes=mtu_bytes,
        allocator_aging_iovas=allocator_aging_iovas,
        **config_overrides,
    )
    testbed = Testbed(config)
    app = RequestResponseApp(
        testbed,
        initiator="remote",
        request_bytes=value_bytes + 4,  # 4 B key
        response_bytes=REDIS_REPLY_BYTES,
        pipeline_depth=pipeline_depth,
        connections=connections_per_core * num_cores,
        host_app_cost_ns=redis_server_cost_ns,
    )
    testbed.remote.start_all()
    testbed.sim.run(until=warmup_ns)
    requests_before = app.stats.requests_completed
    bytes_before = app.stats.bulk_bytes_delivered
    snapshot = (
        testbed.host.iommu.stats.snapshot()
        if testbed.host.iommu is not None
        else None
    )
    pages_before = testbed.host.rx_data_pages
    testbed.sim.run(until=warmup_ns + measure_ns)
    requests = app.stats.requests_completed - requests_before
    goodput_bytes = app.stats.bulk_bytes_delivered - bytes_before
    pages = testbed.host.rx_data_pages - pages_before
    iotlb = l3 = 0.0
    if snapshot is not None and pages > 0:
        per_page = testbed.host.iommu.stats.delta(snapshot).per_page(pages)
        iotlb = per_page.iotlb
        l3 = per_page.l3
    return RedisResult(
        mode=mode,
        value_bytes=value_bytes,
        goodput_gbps=goodput_bytes * 8 / measure_ns,
        requests_per_second=requests / (measure_ns / 1e9),
        iotlb_misses_per_page=iotlb,
        ptcache_l3_misses_per_page=l3,
    )

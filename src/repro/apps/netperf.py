"""netperf-style RPC latency workload (Fig 9).

A latency-sensitive request/response application colocated with
throughput-bound iperf flows, as in multi-tenant deployments: the RPC
runs on its own core (no CPU interference) but shares the NIC, PCIe,
IOMMU and switch with the iperf traffic — so its tail latency picks up
exactly the queueing (P99) and drop/retransmission (P99.9+) inflation
the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import PERCENTILES_FIG9
from ..host.config import HostConfig
from ..host.testbed import Testbed
from .base import RequestResponseApp

__all__ = ["run_netperf_rpc", "NetperfResult"]


@dataclass
class NetperfResult:
    """RPC latency percentiles plus the background load achieved."""

    mode: str
    rpc_bytes: int
    rpc_count: int
    percentiles_ns: dict = field(default_factory=dict)
    background_gbps: float = 0.0
    mean_ns: float = 0.0


def run_netperf_rpc(
    mode: str,
    rpc_bytes: int,
    background_flows: int = 5,
    warmup_ns: float = 3_000_000.0,
    measure_ns: float = 30_000_000.0,
    **config_overrides,
) -> NetperfResult:
    """Run the Fig 9 workload for one (mode, RPC size) point.

    The host gets one extra core beyond the iperf cores; the RPC
    connection is pinned there.
    """
    config = HostConfig.cascade_lake(
        mode=mode,
        num_cores=min(background_flows, 5) + 1,
        **config_overrides,
    )
    testbed = Testbed(config)
    rpc_core = config.num_cores - 1
    testbed.add_rx_flows(
        background_flows, cores=list(range(config.num_cores - 1))
    )
    app = RequestResponseApp(
        testbed,
        initiator="remote",
        request_bytes=rpc_bytes,
        response_bytes=rpc_bytes,
        pipeline_depth=1,
        connections=1,
        cores=[rpc_core],
        record_latency=True,
    )
    testbed.remote.start_all()
    testbed.sim.run(until=warmup_ns)
    app.latency.samples.clear()
    background_before = sum(
        count
        for flow, count in testbed.host.delivered_segments_by_flow.items()
        if flow in testbed.rx_flow_ids
    )
    testbed.sim.run(until=warmup_ns + measure_ns)
    background_after = sum(
        count
        for flow, count in testbed.host.delivered_segments_by_flow.items()
        if flow in testbed.rx_flow_ids
    )
    result = NetperfResult(
        mode=mode,
        rpc_bytes=rpc_bytes,
        rpc_count=len(app.latency),
        background_gbps=(
            (background_after - background_before)
            * config.mtu_bytes
            * 8
            / measure_ns
        ),
    )
    if len(app.latency):
        result.percentiles_ns = app.latency.percentiles(PERCENTILES_FIG9)
        result.mean_ns = app.latency.mean
    return result

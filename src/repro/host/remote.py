"""The remote peer: the other end of the paper's two-server testbed.

The measured host's bottlenecks are what the experiments study, so the
peer is deliberately ideal: infinitely fast CPU and no IOMMU of its
own.  It still runs real DCTCP state machines — window growth, ECN
reaction, loss recovery, RTOs — because the sender-side congestion
behaviour (burstiness with many flows, drop-triggered duplicate ACKs,
timeout retransmissions) is the mechanism behind the paper's drop and
ACK-rate dynamics.

The peer both *sends* data (the iperf flows received by the measured
host, RPC requests) and *receives* data (Fig 10's Tx-direction flows,
RPC responses), acking received data with the standard delayed-ACK
factor.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.dctcp import DctcpParams, DctcpReceiver, DctcpSender
from ..net.packet import Packet, PacketKind
from ..sim import Simulator

__all__ = ["RemotePeer"]


class _RemoteFlow:
    __slots__ = ("flow_id", "sender", "receiver", "rto_event")

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.sender: Optional[DctcpSender] = None
        self.receiver: Optional[DctcpReceiver] = None
        self.rto_event = None


class RemotePeer:
    """Ideal peer server: DCTCP endpoints without host bottlenecks."""

    def __init__(
        self,
        sim: Simulator,
        params: DctcpParams,
        wire_out: Callable[[Packet], None],
        ack_every: int = 2,
        processing_delay_ns: float = 2_000.0,
    ) -> None:
        self.sim = sim
        self.params = params
        self.wire_out = wire_out
        self.ack_every = ack_every
        self.processing_delay_ns = processing_delay_ns
        self._flows: dict[int, _RemoteFlow] = {}
        # App hook for delivered in-order segments (RPC client etc.).
        self.on_delivery: Optional[Callable[[int, int], None]] = None
        self.delivered_segments_by_flow: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Flow registration
    # ------------------------------------------------------------------
    def register_sender(
        self,
        flow_id: int,
        unlimited: bool = True,
        segment_bytes: Optional[int] = None,
    ) -> DctcpSender:
        flow = self._flows.setdefault(flow_id, _RemoteFlow(flow_id))
        flow.sender = DctcpSender(
            flow_id,
            self.params,
            unlimited=unlimited,
            segment_bytes=segment_bytes,
        )
        return flow.sender

    def register_receiver(self, flow_id: int) -> DctcpReceiver:
        flow = self._flows.setdefault(flow_id, _RemoteFlow(flow_id))
        flow.receiver = DctcpReceiver(flow_id, self.params)
        return flow.receiver

    def sender(self, flow_id: int) -> DctcpSender:
        return self._flows[flow_id].sender

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def pump(self, flow_id: int) -> None:
        """Send whatever the flow's congestion window allows."""
        flow = self._flows[flow_id]
        sender = flow.sender
        if sender is None:
            return
        for packet in sender.take_packets(self.sim.now):
            self.wire_out(packet)
        self._arm_rto(flow)

    def start_all(self) -> None:
        """Kick every registered sender (t=0 of the experiment)."""
        for flow_id, flow in self._flows.items():
            if flow.sender is not None:
                self.pump(flow_id)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def packet_from_wire(self, packet: Packet) -> None:
        """Handle a delivered packet after a small processing delay."""
        self.sim.schedule_after(
            self.processing_delay_ns, lambda: self._process(packet)
        )

    def _process(self, packet: Packet) -> None:
        flow = self._flows.get(packet.flow_id)
        if flow is None:
            return
        now = self.sim.now
        if packet.kind == PacketKind.ACK:
            if flow.sender is not None:
                flow.sender.on_ack(packet, now)
                self.pump(packet.flow_id)
            return
        if flow.receiver is None:
            return
        delivered, maybe_ack = flow.receiver.on_data(
            packet, now, ack_every=self.ack_every
        )
        if delivered:
            self.delivered_segments_by_flow[packet.flow_id] = (
                self.delivered_segments_by_flow.get(packet.flow_id, 0)
                + delivered
            )
            if self.on_delivery is not None:
                self.on_delivery(packet.flow_id, delivered)
        if maybe_ack is not None:
            self.wire_out(maybe_ack)

    # ------------------------------------------------------------------
    # RTO
    # ------------------------------------------------------------------
    def _arm_rto(self, flow: _RemoteFlow) -> None:
        sender = flow.sender
        if sender is None or sender.inflight == 0:
            return
        if flow.rto_event is not None:
            flow.rto_event.cancel()
        deadline = max(sender.rto_deadline_ns, self.sim.now)
        flow.rto_event = self.sim.call_at(
            deadline, lambda: self._rto_fire(flow)
        )

    def _rto_fire(self, flow: _RemoteFlow) -> None:
        sender = flow.sender
        flow.rto_event = None
        if sender is None or sender.inflight == 0:
            return
        if self.sim.now + 1e-9 < sender.rto_deadline_ns:
            self._arm_rto(flow)
            return
        sender.on_rto(self.sim.now)
        self.pump(flow.flow_id)

"""The two-server testbed: measured host + ideal peer + switch.

This mirrors the paper's measurement setup (§2.2): two servers
connected through one switch so that all bottlenecks are at the host.
The testbed owns flow setup, warm-up handling, and the snapshot/delta
measurement of every quantity the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults.hooks import current_faults
from ..net.switch import SwitchPort
from ..obs.hooks import current_registry
from ..sim import Simulator, Watchdog
from ..verify.hooks import current_monitor
from .config import HostConfig
from .remote import RemotePeer
from .server import Host

__all__ = ["Testbed", "TestbedResult"]

# Epoch fast-forward calibration (see Testbed.run(fast_forward=True)).
# The measure window is divided into FF_EPOCHS epochs; once two
# consecutive epochs' counter deltas agree within (FF_RTOL, FF_ATOL)
# and no hardening counter moved at all, the remainder of the window is
# extrapolated analytically instead of stepped.
FF_EPOCHS = 16
FF_RTOL = 0.10
FF_ATOL = 4.0

# Flow-id ranges by role (documentation of convention, not enforcement).
RX_FLOW_BASE = 0
TX_FLOW_BASE = 1000
RPC_REQ_BASE = 2000
RPC_RESP_BASE = 3000


@dataclass
class TestbedResult:
    """Everything measured over the post-warmup interval."""

    mode: str
    elapsed_ns: float
    # Application-level (in-order delivered) throughput.
    rx_goodput_gbps: float
    tx_goodput_gbps: float
    # Host drop behaviour.
    drop_fraction: float
    drops: int
    arrived_packets: int
    # Per-page IOMMU cache behaviour (None when IOMMU is off).
    iotlb_misses_per_page: float = 0.0
    ptcache_l1_misses_per_page: float = 0.0
    ptcache_l2_misses_per_page: float = 0.0
    ptcache_l3_misses_per_page: float = 0.0
    memory_reads_per_page: float = 0.0
    # Tx interference (Fig 2c crosses): host Tx packets per Rx page.
    tx_packets_per_page: float = 0.0
    # CPU.
    max_core_utilization: float = 0.0
    # Allocation trace slice for locality analysis (iova, pages).
    allocation_trace: list = field(default_factory=list)
    # Safety accounting.
    stale_translations: int = 0
    invalidation_requests: int = 0
    rx_data_pages: int = 0
    extras: dict = field(default_factory=dict)


class Testbed:
    """Builds and runs one experiment configuration."""

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        config: HostConfig,
        switch_buffer_bytes: int = 2 << 20,
        ecn_threshold_bytes: int = 600_000,
        ecn_threshold_to_remote_bytes: int = 150_000,
        propagation_ns: float = 2_000.0,
        watchdog_interval_ns: Optional[float] = None,
    ) -> None:
        # The two directions see different bottlenecks.  Toward the
        # measured host, the real bottleneck is inside the host (PCIe /
        # NIC buffer, no ECN there), so the switch queue only absorbs
        # sender bursts and gets a high threshold to avoid spurious
        # marks.  Toward the remote, the switch egress itself is the
        # bottleneck for host-Tx traffic and gets a standard DCTCP K.
        self.sim = Simulator()
        faults = current_faults()
        if faults is not None:
            # Fault windows are expressed on the simulated clock; bind
            # it before any injection site is constructed.
            faults.bind_clock(self.sim)
        obs = current_registry()
        if obs is not None:
            # Bind the tracer clock and start the phase sampler before
            # the subsystems below register their metrics.
            obs.attach_simulator(self.sim)
        self.config = config
        self.port_to_host = SwitchPort(
            self.sim,
            rate_gbps=config.link_gbps,
            buffer_bytes=switch_buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_bytes,
            propagation_ns=propagation_ns,
        )
        self.port_to_remote = SwitchPort(
            self.sim,
            rate_gbps=config.link_gbps,
            buffer_bytes=switch_buffer_bytes,
            ecn_threshold_bytes=ecn_threshold_to_remote_bytes,
            propagation_ns=propagation_ns,
        )
        self.host = Host(
            self.sim, config, wire_out=self.port_to_remote.enqueue
        )
        self.remote = RemotePeer(
            self.sim, config.dctcp, wire_out=self.port_to_host.enqueue
        )
        self.port_to_host.deliver = self.host.packet_from_wire
        self.port_to_remote.deliver = self.remote.packet_from_wire
        self.rx_flow_ids: list[int] = []
        self.tx_flow_ids: list[int] = []
        self.watchdog: Optional[Watchdog] = None
        if watchdog_interval_ns is not None:
            self.watchdog = Watchdog(
                self.sim, watchdog_interval_ns, self._progress
            )

    # ------------------------------------------------------------------
    # Flow setup
    # ------------------------------------------------------------------
    def add_rx_flows(
        self, count: int, cores: Optional[list[int]] = None
    ) -> list[int]:
        """iperf-style flows from the peer into the measured host."""
        flow_ids = []
        for index in range(count):
            flow_id = RX_FLOW_BASE + len(self.rx_flow_ids)
            core = (
                cores[index % len(cores)]
                if cores
                else flow_id % self.config.num_cores
            )
            self.host.register_rx_flow(flow_id, core)
            self.remote.register_sender(flow_id, unlimited=True)
            self.rx_flow_ids.append(flow_id)
            flow_ids.append(flow_id)
        return flow_ids

    def add_tx_flows(
        self, count: int, cores: Optional[list[int]] = None
    ) -> list[int]:
        """iperf-style flows from the measured host to the peer."""
        flow_ids = []
        for index in range(count):
            flow_id = TX_FLOW_BASE + len(self.tx_flow_ids)
            core = (
                cores[index % len(cores)]
                if cores
                else flow_id % self.config.num_cores
            )
            self.host.register_tx_flow(flow_id, core, unlimited=True)
            self.remote.register_receiver(flow_id)
            self.tx_flow_ids.append(flow_id)
            flow_ids.append(flow_id)
        return flow_ids

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        warmup_ns: float = 5_000_000.0,
        measure_ns: float = 20_000_000.0,
        strict_until: bool = False,
        fast_forward: bool = False,
    ) -> TestbedResult:
        """Warm up, measure, and return the interval's deltas.

        ``strict_until=True`` raises
        :class:`~repro.sim.EarlyQuiescenceError` if the calendar drains
        before the run's horizon — experiments use it so a dead
        workload cannot masquerade as a zero-throughput measurement.

        ``fast_forward=True`` opts in to the epoch fast-forward: after
        warmup, short calibration epochs are stepped until two
        consecutive epochs show converged counter deltas (and zero
        hardening activity), then the rest of the window is advanced
        analytically — the paper's steady-state model applied to the
        simulator itself.  It is honored only when nothing needs to
        observe every event: no metrics registry, invariant monitor,
        fault runtime or watchdog.  A workload that never goes steady
        is simply stepped to the end.  After a fast-forwarded run the
        simulator must not be stepped again (the skipped calendar is
        stale); the allocation trace covers only the stepped prefix.
        """
        self.remote.start_all()
        for flow_id in self.tx_flow_ids:
            self.host.pump_tx_flow(flow_id)
        if self.watchdog is not None:
            self.watchdog.arm()
        use_ff = (
            fast_forward
            and current_registry() is None
            and current_monitor() is None
            and current_faults() is None
            and self.watchdog is None
        )
        if use_ff:
            return self._run_fast_forward(
                warmup_ns, measure_ns, strict_until
            )
        self.sim.run(until=warmup_ns, strict_until=strict_until)
        snapshot = self._snapshot()
        self.sim.run(
            until=warmup_ns + measure_ns, strict_until=strict_until
        )
        return self._result(snapshot, measure_ns)

    def _run_fast_forward(
        self, warmup_ns: float, measure_ns: float, strict_until: bool
    ) -> TestbedResult:
        """Calibrate epochs, then extrapolate the steady remainder.

        The adjusted-snapshot trick: rather than touching dozens of
        live counters, the extrapolated growth ``scale * epoch_delta``
        is *subtracted from the warmup snapshot*, so the ordinary
        ``live - snapshot`` delta in :meth:`_result` yields stepped +
        extrapolated work.  Cumulative extras (retries, aborts,
        recoveries...) are read live and are correct because the
        hardening probe required them to be exactly unchanged across
        the calibration epochs — the fast-forward only ever skips a
        phase *between* invalidation/hardening transitions.
        """
        from ..analysis.model import (
            deltas_steady,
            extrapolate_snapshot,
            snapshot_delta,
        )

        sim = self.sim
        sim.run(until=warmup_ns, strict_until=strict_until)
        base = self._snapshot()
        end = warmup_ns + measure_ns
        epoch_ns = measure_ns / FF_EPOCHS
        prev_snap = base
        prev_events = sim.executed_events
        prev_delta = None
        prev_probe = self._hardening_probe()
        for epoch in range(1, FF_EPOCHS):
            sim.run(
                until=warmup_ns + epoch * epoch_ns,
                strict_until=strict_until,
            )
            snap = self._snapshot()
            events = sim.executed_events
            probe = self._hardening_probe()
            delta = snapshot_delta(prev_snap, snap)
            # The allocation trace is a log, not a rate; the result's
            # trace slice stays the stepped prefix.
            delta.pop("trace_len", None)
            if (
                prev_delta is not None
                and probe == prev_probe
                and deltas_steady(prev_delta, delta, FF_RTOL, FF_ATOL)
            ):
                scale = (end - sim.now) / epoch_ns
                adjusted = extrapolate_snapshot(base, delta, scale)
                sim.fast_forward_to(
                    end, round((events - prev_events) * scale)
                )
                return self._result(adjusted, measure_ns)
            prev_snap = snap
            prev_events = events
            prev_delta = delta
            prev_probe = probe
        # Never converged: finish the window the ordinary way.
        sim.run(until=end, strict_until=strict_until)
        return self._result(base, measure_ns)

    def _hardening_probe(self) -> tuple:
        """Cumulative hardening/fault counters that must stay frozen.

        :meth:`_result` reads these live (not as interval deltas), so
        the fast-forward may only skip windows in which they provably
        do not move; any change during calibration vetoes convergence.
        """
        host = self.host
        probe = [
            host.driver.invalidation_retries,
            host.driver.degraded_flushes,
            host.rx_dma_aborts,
            host.tx_dma_aborts,
            getattr(host.driver, "stale_translations", 0),
        ]
        if host.iommu is not None:
            queue = host.iommu.invalidation_queue
            probe += [
                queue.dropped_completions,
                queue.partial_completions,
                queue.rearms,
            ]
            fault_queue = host.iommu.fault_queue
            if fault_queue is not None:
                probe += [fault_queue.reported, fault_queue.overflowed]
        if host.recovery is not None:
            probe.append(host.recovery.recoveries)
        return tuple(probe)

    def _progress(self) -> tuple:
        """Watchdog progress sample: anything moving counts as alive."""
        host = self.host
        return (
            host.nic.stats.arrived_packets,
            host.nic.stats.dma_packets,
            host.acks_sent,
            host.tx_data_segments,
            sum(host.delivered_segments_by_flow.values()),
        )

    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        host = self.host
        snap = {
            "delivered_by_flow": dict(host.delivered_segments_by_flow),
            "remote_delivered": dict(
                self.remote.delivered_segments_by_flow
            ),
            "rx_data_pages": host.rx_data_pages,
            "acks_sent": host.acks_sent,
            "tx_data_segments": host.tx_data_segments,
            "arrived": host.nic.stats.arrived_packets,
            "drops": host.nic.stats.total_drops,
            "busy_ns": list(host.cores.busy_ns),
            "trace_len": len(host.allocation_trace),
        }
        if host.iommu is not None:
            snap["iommu"] = host.iommu.stats.snapshot()
        return snap

    def _result(self, snap: dict, measure_ns: float) -> TestbedResult:
        host = self.host
        rx_segments = sum(
            count - snap["delivered_by_flow"].get(flow_id, 0)
            for flow_id, count in host.delivered_segments_by_flow.items()
            if flow_id in self.rx_flow_ids
        )
        tx_segments = sum(
            count - snap["remote_delivered"].get(flow_id, 0)
            for flow_id, count in self.remote.delivered_segments_by_flow.items()
            if flow_id in self.tx_flow_ids
        )
        mtu_bits = self.config.mtu_bytes * 8
        rx_gbps = rx_segments * mtu_bits / measure_ns
        tx_gbps = tx_segments * mtu_bits / measure_ns
        arrived = host.nic.stats.arrived_packets - snap["arrived"]
        drops = host.nic.stats.total_drops - snap["drops"]
        pages = host.rx_data_pages - snap["rx_data_pages"]
        acks = host.acks_sent - snap["acks_sent"]
        tx_data = host.tx_data_segments - snap["tx_data_segments"]
        result = TestbedResult(
            mode=self.config.mode,
            elapsed_ns=measure_ns,
            rx_goodput_gbps=rx_gbps,
            tx_goodput_gbps=tx_gbps,
            drop_fraction=(drops / arrived) if arrived else 0.0,
            drops=drops,
            arrived_packets=arrived,
            tx_packets_per_page=((acks + tx_data) / pages) if pages else 0.0,
            max_core_utilization=max(
                (busy - before) / measure_ns
                for busy, before in zip(host.cores.busy_ns, snap["busy_ns"])
            ),
            allocation_trace=host.allocation_trace[snap["trace_len"]:],
            rx_data_pages=pages,
        )
        if host.iommu is not None and pages > 0:
            delta = host.iommu.stats.delta(snap["iommu"])
            per_page = delta.per_page(pages)
            result.iotlb_misses_per_page = per_page.iotlb
            result.ptcache_l1_misses_per_page = per_page.l1
            result.ptcache_l2_misses_per_page = per_page.l2
            result.ptcache_l3_misses_per_page = per_page.l3
            result.memory_reads_per_page = per_page.memory_reads
            result.invalidation_requests = delta.invalidation_requests
        if hasattr(host.driver, "stale_translations"):
            result.stale_translations = host.driver.stale_translations
        # Hardening / fault accounting (cumulative, not interval
        # deltas: fault sweeps run one testbed per plan).
        result.extras["invalidation_retries"] = (
            host.driver.invalidation_retries
        )
        result.extras["degraded_flushes"] = host.driver.degraded_flushes
        if host.iommu is not None:
            queue = host.iommu.invalidation_queue
            result.extras["dropped_completions"] = (
                queue.dropped_completions
            )
            result.extras["partial_completions"] = (
                queue.partial_completions
            )
            result.extras["invq_rearms"] = queue.rearms
            fault_queue = host.iommu.fault_queue
            if fault_queue is not None:
                result.extras["faults_reported"] = fault_queue.reported
                result.extras["faults_overflowed"] = (
                    fault_queue.overflowed
                )
        result.extras["rx_dma_aborts"] = host.rx_dma_aborts
        result.extras["tx_dma_aborts"] = host.tx_dma_aborts
        if host.recovery is not None:
            result.extras["recoveries"] = host.recovery.recoveries
            result.extras["mttr_max_ns"] = host.recovery.mttr_max_ns
            result.extras["mttr_last_ns"] = host.recovery.mttr_last_ns
        faults = current_faults()
        if faults is not None:
            result.extras["injected_faults"] = faults.injected_faults
            result.extras["unrecovered_wedges"] = (
                faults.unrecovered_wedges()
            )
        # Engine-level work done so far, for wall-clock benchmarks that
        # aggregate over many testbeds (events are load-independent,
        # unlike the wall clock).
        result.extras["executed_events"] = (
            self.sim.executed_events + self.sim.fast_forwarded_events
        )
        return result

"""Per-core CPU time accounting.

Each core is a serialized resource with a busy-until timeline: tasks
submitted to a busy core queue behind it.  Utilization integrates busy
time so experiments can report per-core CPU load (the paper notes CPU
was far from saturated in the IOMMU-bound cases, but becomes the
bottleneck for F&S at 2048-packet rings — Fig 8a/§4.4).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator

__all__ = ["CoreSet"]


class CoreSet:
    """Busy-until timelines for the host's cores."""

    def __init__(self, sim: Simulator, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.sim = sim
        self.num_cores = num_cores
        self._busy_until = [0.0] * num_cores
        self.busy_ns = [0.0] * num_cores
        self.tasks_run = [0] * num_cores

    def run(
        self,
        core: int,
        cost_ns: float,
        fn: Optional[Callable[[], None]] = None,
    ) -> float:
        """Charge ``cost_ns`` to ``core``; run ``fn`` when it completes.

        Returns the completion time.  Work queues FIFO behind whatever
        the core is already doing.
        """
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        if cost_ns < 0:
            raise ValueError("cost must be non-negative")
        start = max(self.sim.now, self._busy_until[core])
        finish = start + cost_ns
        self._busy_until[core] = finish
        self.busy_ns[core] += cost_ns
        self.tasks_run[core] += 1
        if fn is not None:
            self.sim.schedule_at(finish, fn)
        return finish

    def charge(self, core: int, cost_ns: float) -> float:
        """Charge time without a completion callback."""
        return self.run(core, cost_ns, None)

    def backlog_ns(self, core: int) -> float:
        """How far ahead of the clock the core is booked."""
        return max(0.0, self._busy_until[core] - self.sim.now)

    def utilization(self, core: int, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns[core] / elapsed_ns)

    def max_utilization(self, elapsed_ns: float) -> float:
        return max(
            self.utilization(core, elapsed_ns)
            for core in range(self.num_cores)
        )

"""The measured host: the full NIC-to-memory datapath of §2.1.

This class wires every substrate together and drives the paper's five
datapath steps:

1. descriptor preparation (protection driver: IOVA alloc + map);
2. packet arrival into the NIC input buffer (finite; tail drop) and
   page-slot consumption from the per-core ring;
3. DMA through the PCIe Rx pipeline with per-transaction address
   translation (IOTLB probe, PTcache-shortened walk on the shared
   walker — the begin callback runs at DMA start so concurrent Tx
   invalidations interleave faithfully);
4. descriptor retirement (unmap + invalidate per the protection mode)
   and replenishment, charged to the owning core;
5. NAPI-style polled delivery to the transport, with GRO-coalesced
   delayed ACKs, immediate duplicate ACKs on out-of-order arrivals,
   and the Tx (ACK/data) datapath back through the IOMMU.

Throughput, drop rates, cache miss rates, ACK rates and tail latencies
are all *outcomes* of this machinery, not inputs.
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Callable, Optional

from ..faults.hooks import current_faults
from ..iommu import Iommu
from ..iommu.addr import PAGE_SIZE
from ..mem.physmem import PhysicalMemory
from ..net.dctcp import DctcpReceiver, DctcpSender
from ..net.packet import Packet, PacketKind
from ..nic import Nic, RecoveryManager
from ..nic.descriptor import RxDescriptor
from ..obs.hooks import current_registry
from ..verify.hooks import current_monitor
from ..pcie import DmaPipeline
from ..protection import (
    DeferredDriver,
    PassthroughDriver,
    ProtectionDriver,
    StrictFamilyDriver,
    TxMapping,
)
from ..sim import Simulator
from .config import HostConfig
from .cpu import CoreSet

__all__ = ["Host"]

# Process-level cache of post-aging allocator states.  Aging replays
# hundreds of thousands of alloc/free pairs to reproduce a long-uptime
# allocator, and its outcome is a pure function of (driver type,
# allocator type, aging parameters, host config) — so every testbed
# after the first in a process (sweep points, bench rows, pool workers
# inheriting this dict through fork) restores a deep copy instead of
# replaying.  Only consulted when no registry/monitor/fault hooks are
# armed: hooked runs must execute the real alloc/free stream (monitors
# observe it, registry scopes hold references into live allocator
# internals that a restore would break).
_AGED_STATE_FIELDS = (
    "rbtree",
    "_cpu_rcaches",
    "_depot",
    "cpu_ns_by_core",
    "cache_hits",
    "cache_misses",
    "alloc_count",
    "free_count",
)
_AGED_ALLOCATOR_STATES: dict[tuple, dict] = {}


class _FlowBinding:
    """Host-side state for one flow (either direction)."""

    __slots__ = ("flow_id", "core", "receiver", "sender", "rto_event")

    def __init__(self, flow_id: int, core: int):
        self.flow_id = flow_id
        self.core = core
        self.receiver: Optional[DctcpReceiver] = None
        self.sender: Optional[DctcpSender] = None
        self.rto_event = None


class Host:
    """The receiver-side server under measurement."""

    def __init__(
        self,
        sim: Simulator,
        config: HostConfig,
        wire_out: Callable[[Packet], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.wire_out = wire_out
        self.physmem = PhysicalMemory(total_frames=1 << 21)
        self.allocation_trace: list[tuple[int, int]] = []
        self.iommu: Optional[Iommu] = None
        self.driver = self._build_driver()
        self.nic = Nic(config.num_cores, config.nic_buffer_bytes, sim=sim)
        # A fault-injected NIC stall parks packets in the input buffer;
        # the NIC wakes the DMA pump when the stall window closes.
        self.nic.on_wake = self._pump_rx_dma
        self.cores = CoreSet(sim, config.num_cores)
        self.rx_pipeline = DmaPipeline(
            sim, config.pcie, config.pcie.rx_lanes, label="rx"
        )
        self.tx_pipeline = DmaPipeline(
            sim, config.pcie, config.pcie.tx_lanes, label="tx"
        )
        self._flows: dict[int, _FlowBinding] = {}
        # Per-core NAPI state.
        self._napi_queues: list[deque[Packet]] = [
            deque() for _ in range(config.num_cores)
        ]
        self._poll_timer = [None] * config.num_cores
        self._poll_scheduled = [False] * config.num_cores
        # Per-core completed-but-unretired Tx mappings.
        self._pending_tx: list[list[TxMapping]] = [
            [] for _ in range(config.num_cores)
        ]
        # DMA bookkeeping: packet_id -> taken (descriptor, slot) pairs.
        self._pending_slots: dict[int, list] = {}
        # Hard-fault path: packets whose DMA the IOMMU aborted.  The
        # begin callback flags the packet; the finish callback consumes
        # the flag and suppresses delivery (Rx) / wire-out (Tx).
        self._aborted_dmas: set[int] = set()
        self._aborted_tx: set[int] = set()
        self.rx_dma_aborts = 0
        self.tx_dma_aborts = 0
        # Memory-bandwidth utilization estimate for walker contention.
        self._util_window_start = 0.0
        self._util_bytes = 0
        self._mem_utilization = 0.0
        # Counters.
        self.rx_data_segments = 0
        self.rx_data_bytes = 0
        self.rx_data_pages = 0
        self.acks_sent = 0
        self.tx_data_segments = 0
        self.tx_data_bytes_sent = 0
        self.delivered_segments_by_flow: dict[int, int] = {}
        # App hook: called with (flow_id, segments) on in-order delivery.
        self.on_delivery: Optional[Callable[[int, int], None]] = None
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("host")
            scope.counter(
                "rx_data_segments", lambda: self.rx_data_segments
            )
            scope.counter("rx_data_bytes", lambda: self.rx_data_bytes)
            scope.counter("rx_data_pages", lambda: self.rx_data_pages)
            scope.counter("acks_sent", lambda: self.acks_sent)
            scope.counter(
                "tx_data_segments", lambda: self.tx_data_segments
            )
            scope.counter(
                "tx_data_bytes", lambda: self.tx_data_bytes_sent
            )
            scope.counter("rx_dma_aborts", lambda: self.rx_dma_aborts)
            scope.counter("tx_dma_aborts", lambda: self.tx_dma_aborts)
            scope.gauge(
                "mem_utilization", lambda: self._mem_utilization
            )
        if self.iommu is not None and self.iommu.fault_queue is not None:
            self.iommu.fault_queue.bind_clock(lambda: self.sim.now)
        self._age_allocator()
        self._fill_rings()
        # Hard-fault recovery: a housekeeping detector plus the reset
        # state machine.  Built last so its first counter snapshots see
        # the filled rings.
        self.recovery: Optional[RecoveryManager] = None
        if config.recovery:
            self.recovery = RecoveryManager(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_driver(self) -> ProtectionDriver:
        config = self.config
        if config.mode == "off":
            return PassthroughDriver(self.physmem)
        self.iommu = Iommu(config.iommu)
        self.iommu.memory.channel_bandwidth_gbps = (
            config.memory_bandwidth_gbps
        )
        if config.mode == "deferred":
            return DeferredDriver(
                self.iommu,
                self.physmem,
                config.num_cores,
                flush_threshold=config.deferred_flush_threshold,
                allocation_trace=self.allocation_trace,
            )
        factory = {
            "strict": StrictFamilyDriver.linux_strict,
            "fns": StrictFamilyDriver.fns,
            "fns-huge": StrictFamilyDriver.fns_huge,
            "linux+A": StrictFamilyDriver.linux_plus_preserve,
            "linux+B": StrictFamilyDriver.linux_plus_contiguous,
        }[config.mode]
        return factory(
            self.iommu,
            self.physmem,
            config.num_cores,
            chunk_pages=config.descriptor_pages,
            allocation_trace=self.allocation_trace,
        )

    def _age_allocator(self) -> None:
        """Reproduce a long-uptime allocator state (see HostConfig).

        Allocates a burst of page-sized IOVAs across all cores, then
        frees them in shuffled order to random cores.  The magazines
        and depot end up holding addresses spanning a wide extent in a
        scrambled order, so subsequent ring replenishment draws
        scattered IOVAs — the poor-locality regime §2.2 measures.
        Allocation-trace entries from aging are discarded.
        """
        count = self.config.effective_aging_iovas
        allocator = getattr(self.driver, "allocator", None)
        if count <= 0 or allocator is None:
            return
        cacheable = (
            current_registry() is None
            and current_monitor() is None
            and current_faults() is None
        )
        # The aged state is determined by the allocator's construction
        # (driver type, core count, chunk size) plus the aging stream
        # (count, seed, cores); mode is included as a belt-and-braces
        # separator between driver families.
        key = (
            type(self.driver).__name__,
            type(allocator).__name__,
            count,
            self.config.aging_seed,
            self.config.num_cores,
            self.config.descriptor_pages,
            self.config.mode,
        )
        if cacheable:
            state = _AGED_ALLOCATOR_STATES.get(key)
            if state is not None:
                for name, value in copy.deepcopy(state).items():
                    setattr(allocator, name, value)
                self.allocation_trace.clear()
                return
        from ..sim.rng import SeededRng

        rng = SeededRng(self.config.aging_seed, "allocator-aging")
        cores = self.config.num_cores
        iovas = [
            allocator.alloc(1, cpu=index % cores) for index in range(count)
        ]
        rng.shuffle(iovas)
        for index, iova in enumerate(iovas):
            allocator.free(iova, 1, cpu=rng.randint(0, cores - 1))
        self.allocation_trace.clear()
        if cacheable:
            _AGED_ALLOCATOR_STATES[key] = copy.deepcopy(
                {
                    name: getattr(allocator, name)
                    for name in _AGED_STATE_FIELDS
                }
            )

    def _fill_rings(self) -> None:
        for core in range(self.config.num_cores):
            ring = self.nic.rings[core]
            for _ in range(self.config.descriptors_per_ring):
                descriptor, _cost = self.driver.make_rx_descriptor(
                    core, self.config.descriptor_pages
                )
                ring.post(descriptor)

    # ------------------------------------------------------------------
    # Flow registration
    # ------------------------------------------------------------------
    def register_rx_flow(self, flow_id: int, core: int) -> DctcpReceiver:
        """A flow whose data arrives at this host."""
        binding = self._flows.setdefault(flow_id, _FlowBinding(flow_id, core))
        binding.core = core
        binding.receiver = DctcpReceiver(flow_id, self.config.dctcp)
        return binding.receiver

    def register_tx_flow(
        self,
        flow_id: int,
        core: int,
        unlimited: bool = True,
        segment_bytes: Optional[int] = None,
    ) -> DctcpSender:
        """A flow this host transmits (Fig 10 Tx iperf, app responses)."""
        binding = self._flows.setdefault(flow_id, _FlowBinding(flow_id, core))
        binding.core = core
        binding.sender = DctcpSender(
            flow_id,
            self.config.dctcp,
            unlimited=unlimited,
            segment_bytes=segment_bytes,
        )
        return binding.sender

    def core_of(self, flow_id: int) -> int:
        binding = self._flows.get(flow_id)
        if binding is not None:
            return binding.core
        return flow_id % self.config.num_cores

    # ------------------------------------------------------------------
    # Wire ingress (step 2-3)
    # ------------------------------------------------------------------
    def packet_from_wire(self, packet: Packet) -> None:
        """Every arriving packet — data or ACK — is DMA'd via a ring."""
        pages = max(1, -(-packet.size_bytes // PAGE_SIZE))
        binding = self._flows.get(packet.flow_id)
        core = binding.core if binding else packet.flow_id % self.config.num_cores
        ring = self.nic.rings[core]
        self.nic.stats.arrived_packets += 1
        self.nic.stats.arrived_bytes += packet.size_bytes
        if self.nic.quiesced:
            # Function-level reset in progress: the device is off the
            # bus and arrivals are lost, like a real reset window.
            self.nic.stats.buffer_drops += 1
            return
        if ring.free_pages < pages:
            self.nic.stats.ring_drops += 1
            return
        if not self.nic.input_buffer.try_enqueue(packet, packet.size_bytes):
            self.nic.stats.buffer_drops += 1
            return
        # Reserve the page slots now (the NIC owns them on arrival).
        self._pending_slots[packet.packet_id] = ring.take_pages(pages)
        self._pump_rx_dma()

    def _pump_rx_dma(self) -> None:
        while self.rx_pipeline.inflight < self.rx_pipeline.lanes:
            packet = self.nic.next_packet()
            if packet is None:
                return
            taken = self._pending_slots.pop(packet.packet_id)
            self.rx_pipeline.submit(
                packet.size_bytes,
                lambda start, p=packet, t=taken: self._rx_dma_begin(start, p, t),
                lambda p=packet, t=taken: self._rx_dma_finish(p, t),
            )

    def _rx_dma_begin(self, start: float, packet: Packet, taken) -> float:
        """Translate every PCIe transaction, then time the DMA.

        Each IOTLB miss is one page walk: reads within a walk are
        sequential, walks for different pages overlap on the IOMMU's
        walker channels.  The DMA completes when the wire transfer and
        the slowest walk (plus the per-DMA base latency l0) are done.
        """
        config = self.config
        walks_done = start
        remaining = packet.size_bytes
        for _descriptor, slot in taken:
            in_page = min(remaining, PAGE_SIZE)
            remaining -= in_page
            transactions = config.pcie.transactions(in_page)
            mps = config.pcie.max_payload_bytes
            # All of this page's TLPs translate back to back with no
            # event in between; when the driver can batch them (no
            # monitor/faults/fault queue) only the first can walk.
            reads = self.driver.translate_for_dma_burst(
                slot.iova, transactions, "rx"
            )
            if reads is not None:
                if reads:
                    finish = self.iommu.reserve_walk(
                        start, reads, self._mem_utilization
                    )
                    if finish > walks_done:
                        walks_done = finish
                continue
            for index in range(transactions):
                reads, aborted = self.driver.translate_for_dma(
                    slot.iova + index * mps, "rx"
                )
                if aborted:
                    # Hard-fault path: the root complex killed the
                    # transaction; no data lands, the fault is logged,
                    # and the DMA completes early with abort latency.
                    self._aborted_dmas.add(packet.packet_id)
                    self.rx_dma_aborts += 1
                    return start + self.iommu.fault_queue.abort_latency_ns
                if reads:
                    finish = self.iommu.reserve_walk(
                        start, reads, self._mem_utilization
                    )
                    if finish > walks_done:
                        walks_done = finish
        self._account_dma_bytes(packet.size_bytes)
        wire_done = self.rx_pipeline.reserve_wire(start, packet.size_bytes)
        return max(wire_done, walks_done + config.pcie.l0_ns)

    def _rx_dma_finish(self, packet: Packet, taken) -> None:
        aborted = packet.packet_id in self._aborted_dmas
        if aborted:
            self._aborted_dmas.discard(packet.packet_id)
        ring = None
        for descriptor, _slot in taken:
            descriptor.dma_done()
        if taken:
            core = taken[0][0].core
            ring = self.nic.rings[core]
        if packet.is_data and not aborted:
            pages = len(taken)
            self.rx_data_segments += 1
            self.rx_data_bytes += packet.size_bytes
            self.rx_data_pages += pages
        if ring is not None:
            for descriptor in ring.pop_completed():
                self._schedule_descriptor_recycle(descriptor)
        if not aborted:
            # An aborted DMA wrote nothing: the packet is lost exactly
            # like a wire drop, and the transport's loss recovery (dup
            # ACKs / RTO) takes it from here.
            self._deliver_to_core(packet)
        self._pump_rx_dma()

    # ------------------------------------------------------------------
    # Hard-fault recovery surface (driven by RecoveryManager)
    # ------------------------------------------------------------------
    def quiesce_datapath(self) -> None:
        """Stop the DMA engine and drop everything buffered in the NIC.

        Buffered packets' page-slot reservations are released (their
        descriptors are about to be torn off the rings anyway); DMAs
        already in flight on the PCIe pipelines complete on their own
        and are handled by the normal finish callbacks.
        """
        self.nic.quiesce()
        while True:
            entry = self.nic.input_buffer.dequeue()
            if entry is None:
                break
            buffered, _size = entry
            self._pending_slots.pop(buffered.packet_id, None)

    def outstanding_descriptors(self) -> list[RxDescriptor]:
        """Tear every posted descriptor off every ring (device reset)."""
        descriptors: list[RxDescriptor] = []
        for ring in self.nic.rings:
            descriptors.extend(ring.drain())
        return descriptors

    def rebuild_rings(self) -> None:
        """Map and post fresh descriptor rings after a reset."""
        self._fill_rings()

    # ------------------------------------------------------------------
    # Descriptor recycling (step 4)
    # ------------------------------------------------------------------
    def _schedule_descriptor_recycle(self, descriptor) -> None:
        core = descriptor.core

        def recycle():
            retire_cost = self.driver.retire_rx_descriptor(descriptor, core)
            new_descriptor, make_cost = self.driver.make_rx_descriptor(
                core, self.config.descriptor_pages
            )
            self.cores.run(
                core,
                retire_cost + make_cost,
                lambda: self.nic.rings[core].post(new_descriptor),
            )

        self.cores.run(core, 0.0, recycle)

    # ------------------------------------------------------------------
    # NAPI delivery (step 5)
    # ------------------------------------------------------------------
    def _deliver_to_core(self, packet: Packet) -> None:
        core = self.core_of(packet.flow_id)
        queue = self._napi_queues[core]
        queue.append(packet)
        if self._poll_scheduled[core]:
            if (
                len(queue) >= self.config.irq_coalesce_frames
                and self._poll_timer[core] is not None
            ):
                self._poll_timer[core].cancel()
                self._poll_timer[core] = None
                self.sim.schedule_after(0.0, lambda: self._poll(core))
            return
        self._poll_scheduled[core] = True
        self._poll_timer[core] = self.sim.call_after(
            self.config.irq_coalesce_ns, lambda: self._poll(core)
        )

    def _poll(self, core: int) -> None:
        """One NAPI poll: batch-process everything queued for the core."""
        self._poll_timer[core] = None
        queue = self._napi_queues[core]
        batch = list(queue)
        queue.clear()
        if not batch:
            self._poll_scheduled[core] = False
            return
        config = self.config
        touch_ns = config.cpu.data_touch_ns(
            config.ring_size_packets, config.enable_ddio
        )
        cost = config.cpu.stack_per_poll_ns
        for packet in batch:
            cost += config.cpu.stack_per_packet_ns
            if packet.is_data:
                cost += touch_ns * (packet.size_bytes / PAGE_SIZE)
        self.cores.run(core, cost, lambda: self._poll_done(core, batch))

    def _poll_done(self, core: int, batch: list[Packet]) -> None:
        gro_segments = max(
            1, self.config.gro_max_bytes // self.config.mtu_bytes
        )
        touched_receivers: dict[int, DctcpReceiver] = {}
        now = self.sim.now
        for packet in batch:
            binding = self._flows.get(packet.flow_id)
            if packet.kind == PacketKind.ACK:
                if binding is not None and binding.sender is not None:
                    binding.sender.on_ack(packet, now)
                    self.pump_tx_flow(packet.flow_id)
                continue
            if binding is None or binding.receiver is None:
                continue
            receiver = binding.receiver
            delivered, maybe_ack = receiver.on_data(
                packet, now, ack_every=gro_segments
            )
            if delivered:
                touched_receivers[packet.flow_id] = receiver
                self.delivered_segments_by_flow[packet.flow_id] = (
                    self.delivered_segments_by_flow.get(packet.flow_id, 0)
                    + delivered
                )
                if self.on_delivery is not None:
                    self.on_delivery(packet.flow_id, delivered)
            if maybe_ack is not None:
                self._send_ack(core, maybe_ack)
        # End of poll: flush the delayed (GRO) ACK of each flow that
        # made in-order progress.
        for flow_id, receiver in touched_receivers.items():
            trailing = receiver.flush_ack(now)
            if trailing is not None:
                self._send_ack(core, trailing)
        # Tx completion cleaning also happens in the poll context.
        self._maybe_retire_tx(core, force=True)
        # Another interrupt window begins.
        self._poll_scheduled[core] = False
        if self._napi_queues[core]:
            self._poll_scheduled[core] = True
            self._poll_timer[core] = self.sim.call_after(
                self.config.irq_coalesce_ns, lambda: self._poll(core)
            )

    # ------------------------------------------------------------------
    # Tx datapath: ACKs and data
    # ------------------------------------------------------------------
    def _send_ack(self, core: int, ack: Packet) -> None:
        mapping, cost = self.driver.map_tx_page(core)
        self.cores.charge(core, cost)
        self.acks_sent += 1
        self.tx_pipeline.submit(
            ack.size_bytes,
            lambda start, m=mapping, p=ack: self._tx_dma_begin(
                start, p, [m], "tx_ack"
            ),
            lambda p=ack, m=mapping, c=core: self._tx_dma_finish(p, [m], c),
        )

    def pump_tx_flow(self, flow_id: int) -> None:
        """Send whatever the flow's window allows."""
        binding = self._flows.get(flow_id)
        if binding is None or binding.sender is None:
            return
        sender = binding.sender
        for packet in sender.take_packets(self.sim.now):
            self._send_tx_data(binding.core, packet)
        self._arm_rto(binding)

    def _send_tx_data(self, core: int, packet: Packet) -> None:
        pages = max(1, -(-packet.size_bytes // PAGE_SIZE))
        mappings = []
        cost = 0.0
        for _ in range(pages):
            mapping, map_cost = self.driver.map_tx_page(core)
            mappings.append(mapping)
            cost += map_cost
        self.cores.charge(core, cost)
        self.tx_data_segments += 1
        self.tx_data_bytes_sent += packet.size_bytes
        self.tx_pipeline.submit(
            packet.size_bytes,
            lambda start, p=packet, m=mappings: self._tx_dma_begin(
                start, p, m, "tx_data"
            ),
            lambda p=packet, m=mappings, c=core: self._tx_dma_finish(p, m, c),
        )

    def _tx_dma_begin(
        self, start: float, packet: Packet, mappings, source: str
    ) -> float:
        config = self.config
        walks_done = start
        remaining = packet.size_bytes
        for mapping in mappings:
            in_page = min(remaining, PAGE_SIZE)
            remaining -= in_page
            mps = config.pcie.max_payload_bytes
            transactions = config.pcie.transactions(in_page)
            reads = self.driver.translate_for_dma_burst(
                mapping.iova, transactions, source
            )
            if reads is not None:
                if reads:
                    finish = self.iommu.reserve_walk(
                        start, reads, self._mem_utilization
                    )
                    if finish > walks_done:
                        walks_done = finish
                continue
            for index in range(transactions):
                reads, aborted = self.driver.translate_for_dma(
                    mapping.iova + index * mps, source
                )
                if aborted:
                    self._aborted_tx.add(packet.packet_id)
                    self.tx_dma_aborts += 1
                    return start + self.iommu.fault_queue.abort_latency_ns
                if reads:
                    finish = self.iommu.reserve_walk(
                        start, reads, self._mem_utilization
                    )
                    if finish > walks_done:
                        walks_done = finish
        self._account_dma_bytes(packet.size_bytes)
        wire_done = self.tx_pipeline.reserve_wire(start, packet.size_bytes)
        return max(wire_done, walks_done + config.pcie.l0_ns)

    def _tx_dma_finish(self, packet: Packet, mappings, core: int) -> None:
        if packet.packet_id in self._aborted_tx:
            # The device never read the payload; nothing reaches the
            # wire, but the mappings still retire through the normal
            # completion-cleaning path.
            self._aborted_tx.discard(packet.packet_id)
        else:
            self.wire_out(packet)
        self._pending_tx[core].extend(mappings)
        self._maybe_retire_tx(core, force=False)

    def _maybe_retire_tx(self, core: int, force: bool) -> None:
        pending = self._pending_tx[core]
        if not pending:
            return
        if not force and len(pending) < self.config.tx_retire_batch:
            return
        batch = list(pending)
        pending.clear()
        cost = self.driver.retire_tx_pages(batch, core)
        self.cores.charge(core, cost)

    # ------------------------------------------------------------------
    # RTO management for host-side senders
    # ------------------------------------------------------------------
    def _arm_rto(self, binding: _FlowBinding) -> None:
        sender = binding.sender
        if sender is None or sender.inflight == 0:
            return
        if binding.rto_event is not None:
            binding.rto_event.cancel()
        deadline = max(sender.rto_deadline_ns, self.sim.now)
        binding.rto_event = self.sim.call_at(
            deadline, lambda: self._rto_fire(binding)
        )

    def _rto_fire(self, binding: _FlowBinding) -> None:
        sender = binding.sender
        binding.rto_event = None
        if sender is None or sender.inflight == 0:
            return
        if self.sim.now + 1e-9 < sender.rto_deadline_ns:
            self._arm_rto(binding)
            return
        sender.on_rto(self.sim.now)
        self.pump_tx_flow(binding.flow_id)

    # ------------------------------------------------------------------
    # Memory-bandwidth utilization estimate
    # ------------------------------------------------------------------
    def _account_dma_bytes(self, size_bytes: int) -> None:
        self._util_bytes += size_bytes
        window = self.sim.now - self._util_window_start
        if window >= 100_000.0:  # re-estimate every 100 us
            bytes_per_ns = self._util_bytes / window
            # DDIO off: payloads cross the memory bus twice (DMA write
            # plus the CPU's read); on: once.
            factor = 1.0 if self.config.enable_ddio else 2.0
            self._mem_utilization = min(
                0.95,
                bytes_per_ns * factor / self.config.memory_bandwidth_gbps,
            )
            self._util_bytes = 0
            self._util_window_start = self.sim.now

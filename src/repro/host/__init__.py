"""Host assembly: configs, CPU model, measured host, peer, testbed."""

from .config import CpuCosts, HostConfig, MODE_NAMES
from .cpu import CoreSet
from .remote import RemotePeer
from .server import Host
from .testbed import Testbed, TestbedResult

__all__ = [
    "HostConfig",
    "CpuCosts",
    "MODE_NAMES",
    "CoreSet",
    "Host",
    "RemotePeer",
    "Testbed",
    "TestbedResult",
]

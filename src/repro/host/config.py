"""Host configuration: the paper's testbeds as data.

Two presets mirror the paper's measurement setups:

* :meth:`HostConfig.cascade_lake` — §2.2's default: 4-socket Cascade
  Lake, Xeon Gold 6234, 2 DDR4 channels (46.9 GB/s), 100 Gbps CX-5,
  128 Gbps PCIe 3.0, 4 KB MTU, 256-packet rings, 5 cores, DDIO off;

* :meth:`HostConfig.ice_lake` — §4.1's Rx/Tx interference setup: Xeon
  Platinum 8362, 32 cores/socket, 8 DDR4-3200 channels, DDIO forced on.

``mode`` selects the protection driver: ``"off"``, ``"strict"``
(Linux), ``"fns"``, ``"linux+A"``, ``"linux+B"`` (the Fig 12 ablation
points) or ``"deferred"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..iommu import IommuConfig
from ..mem.physmem import PAGE_SIZE
from ..net.dctcp import DctcpParams
from ..pcie import PcieConfig

__all__ = ["HostConfig", "CpuCosts", "MODE_NAMES"]

MODE_NAMES = (
    "off",
    "strict",
    "fns",
    "fns-huge",
    "linux+A",
    "linux+B",
    "deferred",
)


@dataclass
class CpuCosts:
    """Per-core software costs (ns) for the host CPU model.

    ``stack_per_packet_ns`` covers protocol processing per MTU packet;
    ``stack_per_poll_ns`` the fixed NAPI poll + IRQ overhead amortized
    over the batch; ``data_touch_base_ns`` the per-packet data-copy
    cost, which grows with ring size as the buffer footprint defeats
    the hardware prefetchers (the paper's explanation for F&S's small
    CPU-bound gap at 2048-packet rings, §4.4); DDIO reduces the touch
    cost because payloads land in LLC.
    """

    stack_per_packet_ns: float = 300.0
    stack_per_poll_ns: float = 3000.0
    data_touch_base_ns: float = 260.0
    data_touch_ring_factor: float = 0.55  # extra fraction per ring doubling
    ddio_touch_discount: float = 0.45

    def data_touch_ns(
        self, ring_size_packets: int, enable_ddio: bool
    ) -> float:
        doublings = 0
        size = 256
        while size < ring_size_packets:
            size *= 2
            doublings += 1
        cost = self.data_touch_base_ns * (
            1.0 + self.data_touch_ring_factor * doublings
        )
        if enable_ddio:
            cost *= 1.0 - self.ddio_touch_discount
        return cost


@dataclass
class HostConfig:
    """Everything that defines one measured-host configuration."""

    name: str = "cascadelake"
    mode: str = "strict"
    num_cores: int = 5
    link_gbps: float = 100.0
    mtu_bytes: int = 4096
    ring_size_packets: int = 256
    descriptor_pages: int = 64
    nic_buffer_bytes: int = 384 * 1024  # NIC input buffer
    pcie: PcieConfig = field(default_factory=PcieConfig)
    iommu: IommuConfig = field(default_factory=IommuConfig)
    dctcp: DctcpParams = field(default_factory=DctcpParams)
    cpu: CpuCosts = field(default_factory=CpuCosts)
    memory_bandwidth_gbps: float = 46.9
    enable_ddio: bool = False
    # NAPI / interrupt coalescing (DIM-flavoured fixed settings).
    irq_coalesce_ns: float = 6_000.0
    irq_coalesce_frames: int = 32
    gro_max_bytes: int = 65536
    # Tx completion cleaning batch (pages per retire burst).
    tx_retire_batch: int = 1
    # Deferred-mode flush threshold.
    deferred_flush_threshold: int = 250
    # Long-uptime allocator state: before the experiment, this many
    # page-sized IOVAs are allocated and freed back in shuffled order,
    # filling the per-CPU magazines and depot with addresses spanning a
    # wide extent — the state of a server that has been up for a while.
    # The paper's measured PT-L3 working set ("over 64 entries for our
    # setup", §2.2) implies exactly such a wide circulating extent; a
    # cold-booted allocator is compact and shows smaller PTcache-L3
    # miss rates.  Set to 0 for cold-boot behaviour.
    # ``None`` auto-scales with the configured ring footprint:
    # max(16384, 3 x cores x ring_pages) — a host that has churned a
    # bigger working set has spread its allocator state over a
    # proportionally wider extent.
    allocator_aging_iovas: Optional[int] = None
    aging_seed: int = 42
    # Hard-fault recovery (repro.nic.recovery).  Off by default: the
    # recovery manager adds housekeeping events and only matters when
    # hard faults (wedge-invq / device-wedge) are being injected.
    recovery: bool = False
    # Detector cadence and modeled stage latencies of the reset
    # protocol (quiesce the DMA engine, function-level reset, re-enable
    # after rings rebuild).  The documented MTTR bound in DESIGN.md §14
    # derives from these.
    recovery_check_interval_ns: float = 500_000.0
    recovery_quiesce_ns: float = 100_000.0
    recovery_reset_ns: float = 250_000.0
    recovery_resume_ns: float = 50_000.0

    @property
    def effective_aging_iovas(self) -> int:
        if self.allocator_aging_iovas is not None:
            return self.allocator_aging_iovas
        return max(16384, 3 * self.num_cores * self.ring_pages)

    def __post_init__(self) -> None:
        if self.mode not in MODE_NAMES:
            raise ValueError(f"unknown mode {self.mode!r}; use {MODE_NAMES}")
        if self.mtu_bytes <= 0 or self.ring_size_packets <= 0:
            raise ValueError("mtu and ring size must be positive")
        if self.mode == "fns-huge":
            # Hugepage descriptors are 2 MB; keep at least two
            # descriptors per ring so the NIC never stalls on retire.
            self.descriptor_pages = 512
            if self.ring_pages < 2 * 512:
                self.ring_size_packets = max(
                    self.ring_size_packets,
                    -(-512 // self.pages_per_packet),
                )
        self.dctcp.mtu_bytes = self.mtu_bytes

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def pages_per_packet(self) -> int:
        """Page slots one MTU packet consumes (CX-5 stride model)."""
        return -(-self.mtu_bytes // PAGE_SIZE)

    @property
    def ring_pages(self) -> int:
        """Page slots posted per core ring.

        The NIC keeps twice the ring size worth of packets mapped (the
        paper's §2.2 working-set formula: 2 x cores x MTU x ring size).
        """
        return 2 * self.ring_size_packets * self.pages_per_packet

    @property
    def descriptors_per_ring(self) -> int:
        return -(-self.ring_pages // self.descriptor_pages)

    @property
    def iova_working_set_bytes(self) -> int:
        """The paper's active-IOVA-space estimate:
        2 x cores x MTU (rounded down to a power of two) x ring size."""
        mtu_rounded = 1 << (self.mtu_bytes.bit_length() - 1)
        return 2 * self.num_cores * mtu_rounded * self.ring_size_packets

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def cascade_lake(cls, **overrides) -> "HostConfig":
        """The §2.2 default testbed."""
        return cls(name="cascadelake", **overrides)

    @classmethod
    def ice_lake(cls, **overrides) -> "HostConfig":
        """The §4.1 Rx/Tx-interference testbed (DDIO cannot be off)."""
        defaults = dict(
            name="icelake",
            num_cores=8,
            memory_bandwidth_gbps=8 * 25.6,
            enable_ddio=True,
        )
        defaults.update(overrides)
        return cls(**defaults)

"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: a priority queue of
``(time, sequence, callback, handle)`` entries and a clock that jumps
from event to event.  All simulated subsystems in :mod:`repro` — the
IOMMU, the NIC DMA engine, the DCTCP transport — are driven from a
single :class:`Simulator` instance so that their interactions (cache
contention, queue build-up, drops) are causally ordered.

Time is measured in **nanoseconds** throughout the library, stored as
floats.  Nanoseconds are the natural unit for the paper's quantities
(memory reads cost ~197 ns, a 4 KB packet at 100 Gbps lasts ~328 ns).

Two programming styles are supported:

* **callbacks** — ``sim.call_at(t, fn)`` / ``sim.call_after(dt, fn)``;
* **processes** — generator coroutines that ``yield`` simulation
  primitives (see :mod:`repro.sim.process`).

The engine is deterministic: events scheduled for the same timestamp fire
in scheduling order (FIFO), which makes every experiment in the benchmark
suite exactly reproducible for a given seed.

Hot-path design.  Heap entries are plain tuples ``(time, seq, callback,
handle)`` rather than :class:`Event` objects: ``heapq``'s C
implementation then orders entries with C-level tuple comparison
(``time`` first, the unique ``seq`` as tie-break — ``callback`` is never
compared) instead of calling a Python-level ``__lt__`` per sift step,
which dominated the interpreter profile.  The ``handle`` slot is
``None`` for the common schedule-and-forget case; only
:meth:`Simulator.call_at`/:meth:`Simulator.call_after` allocate an
:class:`Event` handle, for callers that need cancellation or the
housekeeping marker.  :meth:`Simulator.run` additionally drains bursts
of same-timestamp events without re-checking the run horizon between
them.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "EarlyQuiescenceError",
    "Watchdog",
    "WatchdogError",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples: scheduling an event in the past, or running a simulator
    that has already been stopped.
    """


class EarlyQuiescenceError(SimulationError):
    """``run(until=..., strict_until=True)`` drained the calendar early.

    A run that was asked to simulate up to ``until`` but ran out of
    events beforehand usually means the workload died (all flows
    stalled, a pump was never primed) — silently returning would let an
    experiment report zeros as if they were measurements.
    """

    def __init__(self, now: float, until: float) -> None:
        super().__init__(
            f"simulation quiesced at t={now:.1f}ns, before "
            f"until={until:.1f}ns: the event calendar drained early"
        )
        self.now = now
        self.until = until


class WatchdogError(SimulationError):
    """A :class:`Watchdog` saw pending events but no progress.

    Carries the pending-event trace so a deadlocked/livelocked run
    identifies its stuck callbacks instead of spinning forever.
    """

    def __init__(self, message: str, pending_trace: list[str]) -> None:
        trace = "\n".join(f"  {line}" for line in pending_trace)
        super().__init__(f"{message}\npending events:\n{trace}")
        self.pending_trace = pending_trace


class Event:
    """A handle for a scheduled callback.

    Events are returned by :meth:`Simulator.call_at` and can be cancelled
    (e.g. a retransmission timer that is defused by an ACK).  Cancelled
    events stay in the heap but are skipped when popped; this "lazy
    deletion" keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "housekeeping")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Housekeeping events (watchdog ticks, metrics-sampler ticks)
        # observe the run without being part of the workload: they are
        # excluded from ``alive_events`` so they neither mask early
        # quiescence nor keep each other alive forever.
        self.housekeeping = housekeeping

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Exact float compare is intended: only *bitwise-equal* times
        # fall through to the deterministic seq tie-break.
        if self.time != other.time:  # noqa: REPRO003
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.1f}ns {state}>"


class Simulator:
    """The event calendar and clock.

    Typical use::

        sim = Simulator()
        sim.call_after(100.0, lambda: print("fired at", sim.now))
        sim.run(until=1_000_000)   # simulate 1 ms
    """

    def __init__(self) -> None:
        # Heap entries: (time, seq, callback, Event-or-None).
        self._heap: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.executed_events = 0
        # Events credited (not executed) by fast_forward_to(): work the
        # analytic steady-state extrapolation accounts for without
        # stepping the calendar.  Zero unless a caller opts in.
        self.fast_forwarded_events = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Returns an :class:`Event` handle that may be cancelled.  Raises
        :class:`SimulationError` if ``time`` is in the past.
        ``housekeeping=True`` marks the event as an observer (watchdog
        or sampler tick) that does not count toward :attr:`alive_events`.

        Callers that never cancel the event should prefer
        :meth:`schedule_at`, which skips the handle allocation.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, housekeeping=housekeeping)
        heapq.heappush(self._heap, (time, seq, callback, event))
        return event

    def call_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(
            self._now + delay, callback, housekeeping=housekeeping
        )

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Schedule-and-forget fast path: no cancellation handle.

        Identical ordering semantics to :meth:`call_at`, but pushes a
        bare heap entry without allocating an :class:`Event`.  The hot
        per-packet/per-DMA schedulers use this; anything that may need
        to cancel (RTO timers, NAPI poll timers) must use
        :meth:`call_at`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback, None))

    def schedule_after(
        self, delay: float, callback: Callable[[], Any]
    ) -> None:
        """``delay`` ns from now, without a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the calendar is
        empty.
        """
        heap = self._heap
        while heap:
            time, _seq, callback, event = heapq.heappop(heap)
            if event is not None and event.cancelled:
                continue
            self._now = time
            self.executed_events += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        strict_until: bool = False,
    ) -> float:
        """Run events until the calendar drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        rate computations (bytes / elapsed) are well defined.

        ``strict_until=True`` turns a silent early drain into a
        structured :class:`EarlyQuiescenceError`: the calendar running
        dry before ``until`` (without :meth:`stop`) means the workload
        died, not that the experiment finished.

        Returns the final simulated time.
        """
        if strict_until and until is None:
            raise SimulationError("strict_until requires until")
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        executed = self.executed_events
        try:
            while heap and not self._stopped:
                burst_time = heap[0][0]
                if until is not None and burst_time > until:
                    break
                # Drain the whole burst at this timestamp: entries
                # pushed *during* the burst for the same time get larger
                # seq values, so the inner loop picks them up in exactly
                # the order the heap would have.
                while heap and heap[0][0] == burst_time:  # noqa: REPRO003
                    entry = pop(heap)
                    event = entry[3]
                    if event is not None and event.cancelled:
                        continue
                    self._now = burst_time
                    executed += 1
                    entry[2]()
                    if self._stopped:
                        break
        finally:
            self.executed_events = executed
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            if strict_until and self.alive_events == 0:
                raise EarlyQuiescenceError(self._now, until)
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    def fast_forward_to(self, time: float, events: int) -> None:
        """Advance the clock analytically, crediting ``events`` of work.

        This is the engine half of the steady-state fast-forward
        (:meth:`repro.host.testbed.Testbed.run` with
        ``fast_forward=True``): the caller has established that the
        workload is in a steady phase, computed what the remaining
        window *would* execute, and jumps the clock there without
        stepping the calendar.

        The jump is **terminal** for the calendar's pending events —
        they are left unfired and would raise scheduling errors if the
        calendar were stepped afterwards, so a fast-forwarded simulator
        must not be :meth:`run` again.  Raises
        :class:`SimulationError` on a backwards jump or if called from
        inside :meth:`run`.
        """
        if self._running:
            raise SimulationError("fast_forward_to() during run()")
        if time < self._now:
            raise SimulationError(
                f"cannot fast-forward to t={time} (now is {self._now})"
            )
        if events < 0:
            raise SimulationError(f"negative event credit {events}")
        self._now = time
        self.fast_forwarded_events += events

    @property
    def pending_events(self) -> int:
        """Number of events in the calendar (including cancelled ones)."""
        return len(self._heap)

    @property
    def alive_events(self) -> int:
        """Non-cancelled workload events in the calendar.

        Housekeeping events (watchdog / sampler ticks) are excluded:
        they observe the run and must not make a drained workload look
        alive — nor keep each other ticking forever.
        """
        count = 0
        for entry in self._heap:
            event = entry[3]
            if event is None:
                count += 1
            elif not event.cancelled and not event.housekeeping:
                count += 1
        return count

    def pending_event_summary(self, limit: int = 16) -> list[str]:
        """The next ``limit`` alive events, formatted for diagnostics."""
        alive = sorted(
            (entry[0], entry[1], entry[2])
            for entry in self._heap
            if entry[3] is None
            or (not entry[3].cancelled and not entry[3].housekeeping)
        )
        lines = []
        for time, seq, callback in alive[:limit]:
            name = getattr(
                callback, "__qualname__", None
            ) or getattr(callback, "__name__", repr(callback))
            lines.append(f"t={time:.1f}ns seq={seq} {name}")
        overflow = len(alive) - limit
        if overflow > 0:
            lines.append(f"... and {overflow} more")
        return lines


class Watchdog:
    """Detects quiesced-but-unfinished runs (deadlock / livelock).

    Every ``interval_ns`` the watchdog samples a caller-supplied
    ``progress`` function (any comparable value — typically a tuple of
    monotonically increasing counters).  If a full interval passes with
    pending events but an unchanged sample, the run is spinning without
    doing work and a :class:`WatchdogError` carrying the pending-event
    trace is raised out of :meth:`Simulator.run`.

    The watchdog's own timer keeps the calendar non-empty, so it
    disarms itself when it is the only thing left alive (a normally
    finished run); pair with ``strict_until`` to catch early drains.
    """

    def __init__(
        self,
        sim: Simulator,
        interval_ns: float,
        progress: Callable[[], Any],
        trace_limit: int = 16,
    ) -> None:
        if interval_ns <= 0:
            raise SimulationError(
                f"watchdog interval must be positive, got {interval_ns}"
            )
        self.sim = sim
        self.interval_ns = interval_ns
        self.progress = progress
        self.trace_limit = trace_limit
        self.checks = 0
        self._last: Any = None
        self._armed = False

    def arm(self) -> None:
        """Start (or restart) periodic progress checks."""
        if self._armed:
            return
        self._armed = True
        self._last = self.progress()
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

    def _tick(self) -> None:
        self.checks += 1
        if self.sim.alive_events == 0:
            # Nothing left but us: the run is over, not stuck.
            self._armed = False
            return
        current = self.progress()
        if current == self._last:
            # Disarm before raising so the watchdog can be re-armed for
            # another run attempt; otherwise ``arm()`` would be a silent
            # no-op forever after the first error.
            self._armed = False
            # Summarize the head of the pending calendar inline so the
            # one-line message already names the stuck callbacks (the
            # full trace still rides on the exception).
            upcoming = self.sim.pending_event_summary(3)
            raise WatchdogError(
                f"no progress for {self.interval_ns:.0f}ns with "
                f"{self.sim.alive_events} events pending "
                f"(deadlock/livelock); next: {'; '.join(upcoming)}",
                self.sim.pending_event_summary(self.trace_limit),
            )
        self._last = current
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: a priority queue of
``(time, sequence, callback)`` triples and a clock that jumps from event to
event.  All simulated subsystems in :mod:`repro` — the IOMMU, the NIC DMA
engine, the DCTCP transport — are driven from a single :class:`Simulator`
instance so that their interactions (cache contention, queue build-up,
drops) are causally ordered.

Time is measured in **nanoseconds** throughout the library, stored as
floats.  Nanoseconds are the natural unit for the paper's quantities
(memory reads cost ~197 ns, a 4 KB packet at 100 Gbps lasts ~328 ns).

Two programming styles are supported:

* **callbacks** — ``sim.call_at(t, fn)`` / ``sim.call_after(dt, fn)``;
* **processes** — generator coroutines that ``yield`` simulation
  primitives (see :mod:`repro.sim.process`).

The engine is deterministic: events scheduled for the same timestamp fire
in scheduling order (FIFO), which makes every experiment in the benchmark
suite exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "EarlyQuiescenceError",
    "Watchdog",
    "WatchdogError",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples: scheduling an event in the past, or running a simulator
    that has already been stopped.
    """


class EarlyQuiescenceError(SimulationError):
    """``run(until=..., strict_until=True)`` drained the calendar early.

    A run that was asked to simulate up to ``until`` but ran out of
    events beforehand usually means the workload died (all flows
    stalled, a pump was never primed) — silently returning would let an
    experiment report zeros as if they were measurements.
    """

    def __init__(self, now: float, until: float) -> None:
        super().__init__(
            f"simulation quiesced at t={now:.1f}ns, before "
            f"until={until:.1f}ns: the event calendar drained early"
        )
        self.now = now
        self.until = until


class WatchdogError(SimulationError):
    """A :class:`Watchdog` saw pending events but no progress.

    Carries the pending-event trace so a deadlocked/livelocked run
    identifies its stuck callbacks instead of spinning forever.
    """

    def __init__(self, message: str, pending_trace: list[str]) -> None:
        trace = "\n".join(f"  {line}" for line in pending_trace)
        super().__init__(f"{message}\npending events:\n{trace}")
        self.pending_trace = pending_trace


class Event:
    """A handle for a scheduled callback.

    Events are returned by :meth:`Simulator.call_at` and can be cancelled
    (e.g. a retransmission timer that is defused by an ACK).  Cancelled
    events stay in the heap but are skipped when popped; this "lazy
    deletion" keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "housekeeping")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Housekeeping events (watchdog ticks, metrics-sampler ticks)
        # observe the run without being part of the workload: they are
        # excluded from ``alive_events`` so they neither mask early
        # quiescence nor keep each other alive forever.
        self.housekeeping = housekeeping

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Exact float compare is intended: only *bitwise-equal* times
        # fall through to the deterministic seq tie-break.
        if self.time != other.time:  # noqa: REPRO003
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.1f}ns {state}>"


class Simulator:
    """The event calendar and clock.

    Typical use::

        sim = Simulator()
        sim.call_after(100.0, lambda: print("fired at", sim.now))
        sim.run(until=1_000_000)   # simulate 1 ms
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.executed_events = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Returns an :class:`Event` handle that may be cancelled.  Raises
        :class:`SimulationError` if ``time`` is in the past.
        ``housekeeping=True`` marks the event as an observer (watchdog
        or sampler tick) that does not count toward :attr:`alive_events`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is {self._now})"
            )
        event = Event(time, self._seq, callback, housekeeping=housekeeping)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(
            self._now + delay, callback, housekeeping=housekeeping
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the calendar is
        empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.executed_events += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        strict_until: bool = False,
    ) -> float:
        """Run events until the calendar drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        rate computations (bytes / elapsed) are well defined.

        ``strict_until=True`` turns a silent early drain into a
        structured :class:`EarlyQuiescenceError`: the calendar running
        dry before ``until`` (without :meth:`stop`) means the workload
        died, not that the experiment finished.

        Returns the final simulated time.
        """
        if strict_until and until is None:
            raise SimulationError("strict_until requires until")
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                self.executed_events += 1
                event.callback()
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            if strict_until and self.alive_events == 0:
                raise EarlyQuiescenceError(self._now, until)
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop a running :meth:`run` after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events in the calendar (including cancelled ones)."""
        return len(self._heap)

    @property
    def alive_events(self) -> int:
        """Non-cancelled workload events in the calendar.

        Housekeeping events (watchdog / sampler ticks) are excluded:
        they observe the run and must not make a drained workload look
        alive — nor keep each other ticking forever.
        """
        return sum(
            1
            for event in self._heap
            if not event.cancelled and not event.housekeeping
        )

    def pending_event_summary(self, limit: int = 16) -> list[str]:
        """The next ``limit`` alive events, formatted for diagnostics."""
        alive = sorted(
            event
            for event in self._heap
            if not event.cancelled and not event.housekeeping
        )
        lines = []
        for event in alive[:limit]:
            callback = event.callback
            name = getattr(
                callback, "__qualname__", None
            ) or getattr(callback, "__name__", repr(callback))
            lines.append(
                f"t={event.time:.1f}ns seq={event.seq} {name}"
            )
        overflow = len(alive) - limit
        if overflow > 0:
            lines.append(f"... and {overflow} more")
        return lines


class Watchdog:
    """Detects quiesced-but-unfinished runs (deadlock / livelock).

    Every ``interval_ns`` the watchdog samples a caller-supplied
    ``progress`` function (any comparable value — typically a tuple of
    monotonically increasing counters).  If a full interval passes with
    pending events but an unchanged sample, the run is spinning without
    doing work and a :class:`WatchdogError` carrying the pending-event
    trace is raised out of :meth:`Simulator.run`.

    The watchdog's own timer keeps the calendar non-empty, so it
    disarms itself when it is the only thing left alive (a normally
    finished run); pair with ``strict_until`` to catch early drains.
    """

    def __init__(
        self,
        sim: Simulator,
        interval_ns: float,
        progress: Callable[[], Any],
        trace_limit: int = 16,
    ) -> None:
        if interval_ns <= 0:
            raise SimulationError(
                f"watchdog interval must be positive, got {interval_ns}"
            )
        self.sim = sim
        self.interval_ns = interval_ns
        self.progress = progress
        self.trace_limit = trace_limit
        self.checks = 0
        self._last: Any = None
        self._armed = False

    def arm(self) -> None:
        """Start (or restart) periodic progress checks."""
        if self._armed:
            return
        self._armed = True
        self._last = self.progress()
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

    def _tick(self) -> None:
        self.checks += 1
        if self.sim.alive_events == 0:
            # Nothing left but us: the run is over, not stuck.
            self._armed = False
            return
        current = self.progress()
        if current == self._last:
            # Disarm before raising so the watchdog can be re-armed for
            # another run attempt; otherwise ``arm()`` would be a silent
            # no-op forever after the first error.
            self._armed = False
            raise WatchdogError(
                f"no progress for {self.interval_ns:.0f}ns with "
                f"{self.sim.alive_events} events pending "
                "(deadlock/livelock)",
                self.sim.pending_event_summary(self.trace_limit),
            )
        self._last = current
        self.sim.call_after(self.interval_ns, self._tick, housekeeping=True)

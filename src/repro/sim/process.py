"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields simulation primitives:

* ``Timeout(delay)`` — sleep for ``delay`` ns;
* ``Signal`` objects — wait until another process fires the signal;
* another ``Process`` — wait for that process to finish (join).

This mirrors the coroutine style of SimPy while staying dependency-free
and fast enough for the packet-level experiments in the benchmark suite.

Example::

    def worker(sim):
        yield Timeout(100.0)
        print("worked at", sim.now)

    sim = Simulator()
    Process(sim, worker(sim))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator

from .engine import SimulationError, Simulator

__all__ = ["Timeout", "Signal", "Process"]


class Timeout:
    """Yielded by a process to sleep for ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A one-to-many wakeup primitive.

    Processes that yield a signal are suspended until :meth:`fire` is
    called; the fired value is delivered as the result of the ``yield``.
    A signal can be fired many times; each firing wakes the waiters that
    were queued at that moment.
    """

    __slots__ = ("_sim", "_waiters")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: list["Process"] = []

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters, passing them ``value``.

        Returns the number of processes woken.  Wakeups are scheduled as
        zero-delay events so the firing process continues first —
        avoiding reentrant generator resumption.
        """
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.call_after(0.0, lambda p=process: p._resume(value))
        return len(waiters)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)


class Process:
    """Drives a generator coroutine inside a :class:`Simulator`.

    The process starts at the current simulation time (via a zero-delay
    event).  Other processes can ``yield`` a process object to join it;
    the joined value is the generator's return value.
    """

    __slots__ = ("sim", "_gen", "finished", "value", "_joiners")

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any]):
        self.sim = sim
        self._gen = generator
        self.finished = False
        self.value: Any = None
        self._joiners: list["Process"] = []
        sim.call_after(0.0, lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.call_after(yielded.delay, lambda: self._resume(None))
        elif isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self.sim.call_after(0.0, lambda: self._resume(yielded.value))
            else:
                yielded._joiners.append(self)
        else:
            raise SimulationError(
                f"process yielded unsupported object {yielded!r}"
            )

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.value = value
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.sim.call_after(0.0, lambda j=joiner: j._resume(value))

    def interrupt(self) -> None:
        """Terminate the process; joiners are woken with ``None``."""
        if not self.finished:
            self._gen.close()
            self._finish(None)

    def __repr__(self) -> str:  # pragma: no cover
        state = "finished" if self.finished else "running"
        return f"<Process {state}>"

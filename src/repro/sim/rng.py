"""Deterministic random-number helpers.

Every stochastic choice in the library (packet jitter, RPC think times,
workload value sampling) draws from a :class:`SeededRng` created from the
experiment seed, so that a given experiment configuration always produces
the same trace.  Streams can be forked per subsystem to keep one
subsystem's draw count from perturbing another's sequence.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeededRng"]


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`.

    The stream key is derived with a stable hash (not Python's
    randomized ``str.__hash__``), so a given (seed, name) pair produces
    the same stream in every process — experiments are exactly
    reproducible across runs.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        digest = hashlib.sha256(f"{seed}/{name}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "little"))

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent stream keyed by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

"""Discrete-event simulation substrate.

Exports the engine (:class:`Simulator`), process primitives
(:class:`Process`, :class:`Timeout`, :class:`Signal`), shared resources
(:class:`FifoQueue`, :class:`WindowedPipeline`, :class:`TokenBucketPacer`)
and deterministic RNG (:class:`SeededRng`).
"""

from .engine import Event, SimulationError, Simulator
from .process import Process, Signal, Timeout
from .resources import FifoQueue, TokenBucketPacer, WindowedPipeline
from .rng import SeededRng

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "Process",
    "Timeout",
    "Signal",
    "FifoQueue",
    "WindowedPipeline",
    "TokenBucketPacer",
    "SeededRng",
]

"""Discrete-event simulation substrate.

Exports the engine (:class:`Simulator`), process primitives
(:class:`Process`, :class:`Timeout`, :class:`Signal`), shared resources
(:class:`FifoQueue`, :class:`WindowedPipeline`, :class:`TokenBucketPacer`)
and deterministic RNG (:class:`SeededRng`).
"""

from .engine import (
    EarlyQuiescenceError,
    Event,
    SimulationError,
    Simulator,
    Watchdog,
    WatchdogError,
)
from .process import Process, Signal, Timeout
from .resources import FifoQueue, TokenBucketPacer, WindowedPipeline
from .rng import SeededRng

__all__ = [
    "Simulator",
    "Event",
    "SimulationError",
    "EarlyQuiescenceError",
    "Watchdog",
    "WatchdogError",
    "Process",
    "Timeout",
    "Signal",
    "FifoQueue",
    "WindowedPipeline",
    "TokenBucketPacer",
    "SeededRng",
]

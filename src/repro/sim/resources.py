"""Shared resources for simulated subsystems.

Three resources cover every queueing structure in the datapath:

* :class:`FifoQueue` — a bounded byte/item queue with tail drop.  Used
  for the NIC input buffer and the switch queue; overflow accounting is
  what produces the paper's packet-drop figures (Figs 2b, 3b, 7b, 8b).

* :class:`WindowedPipeline` — a server that admits work items up to a
  configurable amount of in-flight *bytes* and completes each item after
  a per-item service latency.  This implements Little's law directly:
  sustained throughput = window / latency.  It models the PCIe+IOMMU
  datapath, where ~100 cachelines of buffering at the processor-side end
  of PCIe bound the in-flight DMA data (paper §1, §2.2).

* :class:`TokenBucketPacer` — paces packet departures at a configured
  line rate; models NIC serialization and switch egress.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .engine import Simulator

__all__ = ["FifoQueue", "WindowedPipeline", "TokenBucketPacer"]


class FifoQueue:
    """A bounded FIFO with byte-based occupancy and tail drop.

    ``capacity_bytes`` bounds the queue; an item that does not fit is
    dropped and counted.  An optional ``ecn_threshold_bytes`` reports
    whether an enqueued item should be ECN-marked (DCTCP-style marking
    at the switch).
    """

    def __init__(
        self,
        capacity_bytes: int,
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self._items: deque[tuple[Any, int]] = deque()
        self.occupancy_bytes = 0
        self.enqueued_items = 0
        self.enqueued_bytes = 0
        self.dropped_items = 0
        self.dropped_bytes = 0
        self.marked_items = 0
        self.peak_occupancy_bytes = 0

    def try_enqueue(self, item: Any, size_bytes: int) -> bool:
        """Enqueue ``item``; returns ``False`` (and counts a drop) if full."""
        if self.occupancy_bytes + size_bytes > self.capacity_bytes:
            self.dropped_items += 1
            self.dropped_bytes += size_bytes
            return False
        self._items.append((item, size_bytes))
        self.occupancy_bytes += size_bytes
        self.enqueued_items += 1
        self.enqueued_bytes += size_bytes
        if self.occupancy_bytes > self.peak_occupancy_bytes:
            self.peak_occupancy_bytes = self.occupancy_bytes
        return True

    def should_mark(self) -> bool:
        """Whether current occupancy exceeds the ECN marking threshold."""
        if self.ecn_threshold_bytes is None:
            return False
        return self.occupancy_bytes > self.ecn_threshold_bytes

    def dequeue(self) -> Optional[tuple[Any, int]]:
        """Remove and return ``(item, size_bytes)``; ``None`` if empty."""
        if not self._items:
            return None
        item, size = self._items.popleft()
        self.occupancy_bytes -= size
        return item, size

    def __len__(self) -> int:
        return len(self._items)

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered items that were dropped."""
        offered = self.enqueued_items + self.dropped_items
        return self.dropped_items / offered if offered else 0.0


class WindowedPipeline:
    """A latency/window-limited server (Little's law made executable).

    Work items are submitted with a byte size and a service latency; at
    most ``window_bytes`` may be in flight.  When an item completes, its
    completion callback runs and waiting items are admitted.  Throughput
    therefore self-limits to ``window_bytes / avg_latency`` — exactly the
    PCIe behaviour the paper describes: once the ~100-cacheline buffer at
    the processor-side end of PCIe fills, no more requests can be kept in
    flight and the link underutilizes.

    The optional ``max_inflight_items`` additionally caps the number of
    concurrent items (e.g. DMA engine tags).
    """

    def __init__(
        self,
        sim: Simulator,
        window_bytes: int,
        max_inflight_items: Optional[int] = None,
    ) -> None:
        if window_bytes <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window_bytes = window_bytes
        self.max_inflight_items = max_inflight_items
        self.inflight_bytes = 0
        self.inflight_items = 0
        self._waiting: deque[tuple[int, float, Callable[[], None]]] = deque()
        self.completed_items = 0
        self.completed_bytes = 0
        self._busy_until = 0.0

    def submit(
        self,
        size_bytes: int,
        latency_ns: float,
        on_complete: Callable[[], None],
    ) -> None:
        """Submit a work item; it starts when window space is available."""
        self._waiting.append((size_bytes, latency_ns, on_complete))
        self._admit()

    def _has_room(self, size_bytes: int) -> bool:
        if self.inflight_bytes + size_bytes > self.window_bytes:
            # Always admit at least one item, else oversized items stall.
            if self.inflight_items > 0:
                return False
        if (
            self.max_inflight_items is not None
            and self.inflight_items >= self.max_inflight_items
        ):
            return False
        return True

    def _admit(self) -> None:
        while self._waiting:
            size, latency, on_complete = self._waiting[0]
            if not self._has_room(size):
                return
            self._waiting.popleft()
            self.inflight_bytes += size
            self.inflight_items += 1
            self.sim.schedule_after(
                latency, lambda s=size, cb=on_complete: self._complete(s, cb)
            )

    def _complete(self, size_bytes: int, on_complete: Callable[[], None]) -> None:
        self.inflight_bytes -= size_bytes
        self.inflight_items -= 1
        self.completed_items += 1
        self.completed_bytes += size_bytes
        on_complete()
        self._admit()

    @property
    def queued_items(self) -> int:
        """Items waiting for window space."""
        return len(self._waiting)


class TokenBucketPacer:
    """Serializes item departures at a fixed line rate.

    Items are emitted back-to-back at ``rate_bits_per_ns`` (e.g. 100 Gbps
    == 100 bits/ns); each item's wire time is ``bits / rate``.  Used for
    the sender NIC's egress and the switch's egress port.
    """

    def __init__(self, sim: Simulator, rate_gbps: float) -> None:
        if rate_gbps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate_bits_per_ns = rate_gbps  # 1 Gbps == 1 bit/ns
        self._next_free = 0.0
        self.sent_items = 0
        self.sent_bytes = 0

    def send(self, size_bytes: int, on_delivered: Callable[[], None]) -> float:
        """Schedule delivery of one item; returns its delivery time."""
        wire_ns = size_bytes * 8 / self.rate_bits_per_ns
        start = max(self.sim.now, self._next_free)
        finish = start + wire_ns
        self._next_free = finish
        self.sent_items += 1
        self.sent_bytes += size_bytes
        self.sim.schedule_at(finish, on_delivered)
        return finish

    @property
    def backlog_ns(self) -> float:
        """How far ahead of the clock the serializer is booked."""
        return max(0.0, self._next_free - self.sim.now)

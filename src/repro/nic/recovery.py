"""Device reset & recovery state machine (the hard-fault protocol).

Transient faults degrade throughput and heal themselves; *hard* faults
(a wedged invalidation queue, a dead descriptor-fetch engine) persist
until the host intervenes.  :class:`RecoveryManager` is that
intervention, modeled on what real NIC drivers do after an AER event or
a TX-timeout watchdog fires:

    HEALTHY --detect--> QUIESCING --> RESETTING --> REARMING
        ^                                               |
        +---------------- RESUMING <--------------------+

* **detect** — a periodic housekeeping tick watches two cheap signals:
  the hardened drivers' degraded-flush counter climbing (every retire
  is falling back to the global flush → the invalidation queue stopped
  confirming completions) and DMA progress flatlining while the input
  buffer holds work (the device stopped fetching descriptors).  The
  tick also drains the IOMMU's fault-reporting queue, as the host's
  fault-log consumer.
* **QUIESCING** — stop the NIC's DMA engine and drop buffered packets
  (their page-slot reservations are released); arrivals during
  recovery are dropped at the wire, exactly like a real function-level
  reset window.
* **RESETTING** — tear all posted descriptors off the rings and hand
  them to the protection driver's
  :meth:`~repro.protection.base.ProtectionDriver.reset_recover`, which
  re-arms the invalidation queue *first* (clearing a wedge), retires
  every outstanding buffer through the hardened path, and closes with
  a global flush.  Then a function-level reset of the NIC clears a
  device wedge.
* **REARMING** — the host maps and posts fresh descriptor rings.
* **RESUMING** — re-enable the DMA engine; MTTR (detect → resume, in
  simulated ns) is recorded to the ``recovery`` metrics scope and the
  fault timeline.

Every stage latency is a :class:`~repro.host.config.HostConfig` knob;
DESIGN.md §14 derives the documented MTTR bound from them.  The whole
machine is driven by the simulated clock and plan-seeded state only,
so chaos timelines stay byte-identical across worker counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..faults.hooks import current_faults
from ..obs.hooks import current_registry

if TYPE_CHECKING:  # pragma: no cover
    from ..host.server import Host

__all__ = ["RecoveryManager"]

# Degraded flushes accumulated *since the last healthy baseline* that
# indicate a wedged queue.  One-off drops under transient fault windows
# rarely exhaust the retry budget twice between recoveries; a wedged
# queue degrades *every* retire until it is re-armed.  The count is
# cumulative rather than per-tick: after a reset drops in-flight
# segments, senders sit in RTO and retires arrive one per several
# ticks — a per-interval delta would never reach the threshold and a
# wedge latched behind another fault's recovery would go undetected.
DEGRADED_FLUSH_THRESHOLD = 2


class RecoveryManager:
    """Detects wedged hardware and runs the reset protocol."""

    HEALTHY = "healthy"
    QUIESCING = "quiescing"
    RESETTING = "resetting"
    REARMING = "rearming"
    RESUMING = "resuming"

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.sim = host.sim
        config = host.config
        self.check_interval_ns = config.recovery_check_interval_ns
        self.quiesce_ns = config.recovery_quiesce_ns
        self.reset_ns = config.recovery_reset_ns
        self.resume_ns = config.recovery_resume_ns
        self.state = self.HEALTHY
        # MTTR accounting (simulated ns, detect -> resume).
        self.recoveries = 0
        self.mttr_last_ns = 0.0
        self.mttr_max_ns = 0.0
        self.mttr_total_ns = 0.0
        self.fault_records_drained = 0
        self._detect_time = 0.0
        self._last_dma_packets = host.nic.stats.dma_packets
        self._last_degraded = host.driver.degraded_flushes
        # Timeline hook: recovery milestones interleave with injected
        # faults so a chaos timeline reads as one causal story.
        self.faults = current_faults()
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("recovery")
            scope.counter("recoveries", lambda: self.recoveries)
            scope.counter(
                "fault_records_drained",
                lambda: self.fault_records_drained,
            )
            scope.gauge("mttr_last_ns", lambda: self.mttr_last_ns)
            scope.gauge("mttr_max_ns", lambda: self.mttr_max_ns)
        self._schedule_tick()

    # ------------------------------------------------------------------
    # Detection (housekeeping, excluded from liveness accounting)
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        self.sim.call_at(
            self.sim.now + self.check_interval_ns,
            self._tick,
            housekeeping=True,
        )

    def _tick(self) -> None:
        self._drain_fault_log()
        if self.state == self.HEALTHY:
            reason = self._detect()
            if reason is not None:
                self._begin_recovery(reason)
        self._schedule_tick()

    def _drain_fault_log(self) -> None:
        iommu = self.host.iommu
        if iommu is not None and iommu.fault_queue is not None:
            self.fault_records_drained += len(iommu.fault_queue.drain())

    def _detect(self) -> str | None:
        """One detector pass; returns the wedge reason or ``None``."""
        nic = self.host.nic
        driver = self.host.driver
        dma_packets = nic.stats.dma_packets
        degraded = driver.degraded_flushes
        queue_wedged = (
            degraded - self._last_degraded >= DEGRADED_FLUSH_THRESHOLD
        )
        device_wedged = (
            dma_packets == self._last_dma_packets
            and nic.input_buffer.occupancy_bytes > 0
        )
        # DMA-progress flatlining is a per-tick signal; the degraded
        # baseline advances only on recovery (see the threshold note).
        self._last_dma_packets = dma_packets
        if queue_wedged and device_wedged:
            return "invq+device"
        if queue_wedged:
            return "invq"
        if device_wedged:
            return "device"
        return None

    # ------------------------------------------------------------------
    # The reset protocol (real events: recovery counts as liveness)
    # ------------------------------------------------------------------
    def _begin_recovery(self, reason: str) -> None:
        self.state = self.QUIESCING
        self._detect_time = self.sim.now
        self._record("detect", f"reason={reason}")
        self.host.quiesce_datapath()
        self.sim.schedule_after(self.quiesce_ns, self._do_reset)

    def _do_reset(self) -> None:
        self.state = self.RESETTING
        descriptors = self.host.outstanding_descriptors()
        cpu_ns = self.host.driver.reset_recover(descriptors)
        self.host.nic.reset_device()
        self._record(
            "reset",
            f"descriptors={len(descriptors)} cpu={cpu_ns:.0f}",
        )
        self.sim.schedule_after(self.reset_ns + cpu_ns, self._do_rearm)

    def _do_rearm(self) -> None:
        self.state = self.REARMING
        self.host.rebuild_rings()
        self.sim.schedule_after(self.resume_ns, self._do_resume)

    def _do_resume(self) -> None:
        self.state = self.RESUMING
        self.host.nic.resume()
        mttr = self.sim.now - self._detect_time
        self.recoveries += 1
        self.mttr_last_ns = mttr
        self.mttr_total_ns += mttr
        if mttr > self.mttr_max_ns:
            self.mttr_max_ns = mttr
        self._record("resume", f"mttr={mttr:.0f}")
        # Fresh baseline so the recovered interval is not re-flagged.
        self._last_dma_packets = self.host.nic.stats.dma_packets
        self._last_degraded = self.host.driver.degraded_flushes
        self.state = self.HEALTHY

    def _record(self, milestone: str, detail: str) -> None:
        if self.faults is not None:
            self.faults.record("recovery", milestone, detail)

"""NIC model: descriptors, rings, input buffer, drop accounting."""

from .descriptor import DEFAULT_DESCRIPTOR_PAGES, PageSlot, RxDescriptor
from .device import Nic, NicStats
from .recovery import RecoveryManager
from .ring import RxRing

__all__ = [
    "Nic",
    "NicStats",
    "RecoveryManager",
    "RxRing",
    "RxDescriptor",
    "PageSlot",
    "DEFAULT_DESCRIPTOR_PAGES",
]

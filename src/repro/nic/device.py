"""The NIC: input buffer, per-core Rx rings, drop accounting.

Arriving packets enter a bounded input buffer; the DMA engine drains it
through the PCIe/IOMMU pipeline.  When address translation inflates
per-DMA latency, the drain rate falls below the arrival rate, the
buffer fills, and packets are tail-dropped — the causal chain behind
the paper's throughput/drop figures.  A second drop mode is ring
exhaustion: a packet whose core ring has no free page slots cannot be
DMA'd (the CPU fell behind on descriptor recycling).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..faults.hooks import injector_for
from ..obs.hooks import current_registry
from ..sim import FifoQueue, Simulator
from .ring import RxRing

__all__ = ["Nic", "NicStats"]


class NicStats:
    """Drop and arrival counters for one NIC."""

    __slots__ = (
        "arrived_packets",
        "arrived_bytes",
        "buffer_drops",
        "ring_drops",
        "dma_packets",
        "dma_bytes",
    )

    def __init__(self) -> None:
        self.arrived_packets = 0
        self.arrived_bytes = 0
        self.buffer_drops = 0
        self.ring_drops = 0
        self.dma_packets = 0
        self.dma_bytes = 0

    @property
    def total_drops(self) -> int:
        return self.buffer_drops + self.ring_drops

    @property
    def drop_fraction(self) -> float:
        if self.arrived_packets == 0:
            return 0.0
        return self.total_drops / self.arrived_packets


class Nic:
    """Receive side of the measured host's NIC."""

    def __init__(
        self,
        num_cores: int,
        buffer_bytes: int = 1 << 20,
        sim: Optional[Simulator] = None,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        # Fault injector (repro.faults); None in normal runs.  The
        # simulator reference exists only for fault scheduling
        # (stall-end wakeups, doorbell redelivery).
        self.sim = sim
        self.faults = injector_for("nic")
        self.rings = [
            RxRing(core, sim=sim, faults=self.faults)
            for core in range(num_cores)
        ]
        self.input_buffer = FifoQueue(buffer_bytes)
        self.stats = NicStats()
        # Called when a fault-induced stall ends and buffered packets
        # can move again; the host points this at its DMA pump.
        self.on_wake: Optional[Callable[[], None]] = None
        self._wake_event = None
        self.stalled_dequeues = 0
        # Recovery surface: a quiesced NIC stops dequeuing (and new
        # arrivals are dropped upstream) while the host tears down and
        # rebuilds the rings.
        self.quiesced = False
        self.resets = 0
        self.obs = current_registry()
        if self.obs is not None:
            scope = self.obs.scope("nic")
            stats = self.stats
            scope.counter("arrived_packets", lambda: stats.arrived_packets)
            scope.counter("arrived_bytes", lambda: stats.arrived_bytes)
            scope.counter("buffer_drops", lambda: stats.buffer_drops)
            scope.counter("ring_drops", lambda: stats.ring_drops)
            scope.counter("dma_packets", lambda: stats.dma_packets)
            scope.counter("dma_bytes", lambda: stats.dma_bytes)
            scope.counter("stalled_dequeues", lambda: self.stalled_dequeues)
            scope.counter(
                "posted_descriptors",
                lambda: sum(r.posted_descriptors for r in self.rings),
            )
            scope.counter(
                "completed_descriptors",
                lambda: sum(r.completed_descriptors for r in self.rings),
            )
            scope.counter(
                "dropped_doorbells",
                lambda: sum(r.dropped_doorbells for r in self.rings),
            )
            scope.gauge(
                "buffered_bytes", lambda: self.input_buffer.occupancy_bytes
            )

    def ring_for_flow(self, flow_id: int) -> RxRing:
        """aRFS steering: a flow always lands on the same core's ring."""
        return self.rings[flow_id % len(self.rings)]

    def offer(self, packet, pages_needed: int) -> bool:
        """Accept an arriving packet into the input buffer.

        Returns ``False`` (and counts the drop) when the buffer is full
        or the target ring has no free pages for it.
        """
        self.stats.arrived_packets += 1
        self.stats.arrived_bytes += packet.size_bytes
        ring = self.ring_for_flow(packet.flow_id)
        if ring.free_pages < pages_needed:
            self.stats.ring_drops += 1
            return False
        if not self.input_buffer.try_enqueue(packet, packet.size_bytes):
            self.stats.buffer_drops += 1
            return False
        return True

    def next_packet(self):
        """Pop the next buffered packet for the DMA engine.

        Returns ``None`` when the buffer is empty — or when a
        fault-injected descriptor-engine stall is in effect, in which
        case a wakeup is scheduled for the stall's end so the pump
        resumes without polling.  A quiesced or wedged device dequeues
        nothing; a wedge (``stall_until() == inf``) never self-wakes —
        only a reset via the recovery path restarts the pump.
        """
        if self.quiesced:
            return None
        if self.faults is not None:
            stalled_until = self.faults.stall_until()
            if stalled_until is not None:
                self.stalled_dequeues += 1
                self._schedule_wake(stalled_until)
                return None
        entry = self.input_buffer.dequeue()
        if entry is None:
            return None
        packet, _size = entry
        self.stats.dma_packets += 1
        self.stats.dma_bytes += packet.size_bytes
        return packet

    def _schedule_wake(self, at_ns: float) -> None:
        if self.sim is None or self._wake_event is not None:
            return
        if math.isinf(at_ns) or at_ns <= self.sim.now:
            # A wedged device (inf) cannot wake itself; the watchdog or
            # recovery manager must reset it.
            return
        self._wake_event = self.sim.call_at(at_ns, self._wake)

    def _wake(self) -> None:
        self._wake_event = None
        if self.on_wake is not None:
            self.on_wake()

    # ------------------------------------------------------------------
    # Reset & recovery surface
    # ------------------------------------------------------------------
    def quiesce(self) -> None:
        """Stop the DMA engine while the host tears the rings down."""
        self.quiesced = True

    def reset_device(self) -> None:
        """Function-level reset: the only way out of a device wedge.

        Cancels any pending stall wakeup (its ring state is gone) and
        clears a latched hard fault on the device's injector.
        """
        self.resets += 1
        if self._wake_event is not None:
            self._wake_event.cancel()
            self._wake_event = None
        if self.faults is not None:
            self.faults.notify_reset()

    def resume(self) -> None:
        """Re-enable the DMA engine after rings are rebuilt."""
        self.quiesced = False

"""Rx descriptors: the multi-page DMA targets the NIC consumes.

A Mellanox CX-5 Rx descriptor (multi-packet WQE) points at 64 pages by
default; arriving packets consume page slots in order, and once the NIC
has DMA'd into every page of a descriptor the driver unmaps/invalidates
all of them (paper §2.1 step 4).  The descriptor granularity is
therefore both the *unmap* granularity of strict mode and the *chunk*
granularity of F&S.

``PageSlot`` carries the IOVA/frame pair plus everything the protection
driver needs at completion time (which chunk the IOVA came from, for
F&S).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PageSlot", "RxDescriptor", "DEFAULT_DESCRIPTOR_PAGES"]

DEFAULT_DESCRIPTOR_PAGES = 64

_descriptor_ids = itertools.count()


@dataclass(frozen=True)
class PageSlot:
    """One page-sized DMA target inside a descriptor."""

    iova: int
    frame: int


@dataclass
class RxDescriptor:
    """A multi-page Rx descriptor.

    ``slots`` are consumed front to back as packets arrive;
    ``dma_pending`` counts pages handed to the DMA engine whose writes
    have not yet completed.  The descriptor is *complete* — eligible for
    unmap/invalidate/recycle — once every slot is consumed and all DMA
    writes have landed.
    """

    slots: list[PageSlot]
    core: int
    driver_data: Any = None  # protection-driver cookie (e.g. F&S chunk)
    descriptor_id: int = field(default_factory=lambda: next(_descriptor_ids))
    consumed: int = 0
    dma_pending: int = 0

    @property
    def size(self) -> int:
        return len(self.slots)

    @property
    def free_pages(self) -> int:
        return len(self.slots) - self.consumed

    @property
    def is_exhausted(self) -> bool:
        return self.consumed >= len(self.slots)

    @property
    def is_complete(self) -> bool:
        return self.is_exhausted and self.dma_pending == 0

    def take_page(self) -> PageSlot:
        """Consume the next page slot for an arriving packet."""
        if self.is_exhausted:
            raise RuntimeError("descriptor exhausted")
        slot = self.slots[self.consumed]
        self.consumed += 1
        self.dma_pending += 1
        return slot

    def dma_done(self, pages: int = 1) -> None:
        """Record completion of DMA writes into ``pages`` taken slots."""
        if pages > self.dma_pending:
            raise RuntimeError("more DMA completions than pending pages")
        self.dma_pending -= pages

"""The per-core Rx ring: an ordered set of descriptors.

The driver posts descriptors; the NIC consumes page slots in order as
packets arrive (aRFS steers each flow to one core's ring, so a ring's
slots are consumed by that core's flows only).  When the head
descriptor's pages are all consumed and written, it is *complete*: the
host pops it, the protection driver unmaps/invalidates/frees it, and a
fresh descriptor is posted — keeping the posted-descriptor count (the
ring size) constant.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from .descriptor import PageSlot, RxDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injectors import NicInjector
    from ..sim import Simulator

__all__ = ["RxRing"]


class RxRing:
    """Ordered descriptors for one core."""

    def __init__(
        self,
        core: int,
        sim: Optional["Simulator"] = None,
        faults: Optional["NicInjector"] = None,
    ) -> None:
        self.core = core
        self._descriptors: deque[RxDescriptor] = deque()
        self.posted_descriptors = 0
        self.completed_descriptors = 0
        # Maintained count of unconsumed slots; every arrival checks
        # free_pages, so summing the deque there is a hot-path cost.
        self._free_pages = 0
        # Fault plumbing (repro.faults); both None in normal runs.
        self.sim = sim
        self.faults = faults
        self.dropped_doorbells = 0

    def post(self, descriptor: RxDescriptor) -> None:
        if self.faults is not None and self.sim is not None:
            delay = self.faults.doorbell_delay()
            if delay > 0.0:
                # The doorbell write was lost: the descriptor sits in
                # host memory but the NIC doesn't know about it until a
                # later write re-advertises the tail pointer.  Until
                # then its pages are invisible to arrival processing
                # (so the ring looks exhausted — a drop mode).
                self.dropped_doorbells += 1
                self.sim.schedule_after(
                    delay, lambda d=descriptor: self._post_now(d)
                )
                return
        self._post_now(descriptor)

    def _post_now(self, descriptor: RxDescriptor) -> None:
        self._descriptors.append(descriptor)
        self.posted_descriptors += 1
        self._free_pages += descriptor.free_pages

    @property
    def free_pages(self) -> int:
        """Unconsumed page slots across all posted descriptors."""
        return self._free_pages

    @property
    def descriptor_count(self) -> int:
        return len(self._descriptors)

    def take_pages(self, count: int) -> list[tuple[RxDescriptor, PageSlot]]:
        """Consume ``count`` page slots in order (may span descriptors).

        Raises ``RuntimeError`` if the ring has fewer free pages; the
        caller must check :attr:`free_pages` first (and drop the packet
        if the ring is empty — the "ring exhaustion" drop mode).
        """
        if count > self._free_pages:
            raise RuntimeError("ring has too few free pages")
        taken: list[tuple[RxDescriptor, PageSlot]] = []
        for descriptor in self._descriptors:
            while not descriptor.is_exhausted and len(taken) < count:
                taken.append((descriptor, descriptor.take_page()))
            if len(taken) == count:
                break
        self._free_pages -= count
        return taken

    def pop_completed(self) -> list[RxDescriptor]:
        """Remove and return all leading complete descriptors."""
        completed = []
        while self._descriptors and self._descriptors[0].is_complete:
            completed.append(self._descriptors.popleft())
            self.completed_descriptors += 1
        return completed

    def head(self) -> Optional[RxDescriptor]:
        return self._descriptors[0] if self._descriptors else None

    def drain(self) -> list[RxDescriptor]:
        """Remove and return *all* posted descriptors (device reset).

        Unlike :meth:`pop_completed` this takes incomplete descriptors
        too and does not count completions: the descriptors were torn
        off the ring by a reset, not retired by the device.  The caller
        (the recovery path) owns unmapping their outstanding pages.
        """
        drained = list(self._descriptors)
        self._descriptors.clear()
        self._free_pages = 0
        return drained

"""The PCIe/DMA pipeline between the NIC and host memory.

Each direction of PCIe is modeled as a :class:`DmaPipeline`:

* a small number of *lanes* — concurrent DMAs in flight.  The Rx
  (write) direction uses one lane: the ~100 cachelines of buffering at
  the processor-side end of PCIe let writes pipeline within one DMA but
  not deeply across DMAs, which is why per-DMA latency directly caps Rx
  throughput (paper §1's Little's-law argument).  The Tx (read)
  direction uses more lanes because PCIe read transactions tolerate
  much larger per-transaction latency before the link underutilizes
  [Vuppalapati et al. 2024] — the asymmetry Fig 10 shows.

* a shared wire serializer at the link rate (128 Gbps for the paper's
  PCIe 3.0 x16), so aggregate throughput never exceeds the link even
  with several lanes.

A DMA's service time is computed *when it starts* via a caller-supplied
``begin`` callback: the callback performs the IOTLB/PTcache probes at
the correct simulated instant (so invalidations by other traffic
interleave faithfully), reserves page-walk time on the shared walker,
and returns the completion time — typically
``max(wire_done, walk_done + l0)`` with the paper's fitted l0 = 65 ns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..faults.hooks import injector_for
from ..mem.latency import DEFAULT_L0_NS
from ..obs.hooks import current_registry
from ..sim import Simulator

__all__ = ["DmaPipeline", "PcieConfig"]


@dataclass
class PcieConfig:
    """Link and DMA-engine parameters."""

    gbps: float = 128.0  # PCIe 3.0 x16 effective
    max_payload_bytes: int = 256  # MaxPayloadSize: TLP splitting granule
    l0_ns: float = DEFAULT_L0_NS  # per-DMA base latency (paper's fit)
    rx_lanes: int = 1
    tx_lanes: int = 4

    def wire_ns(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on the link."""
        return size_bytes * 8 / self.gbps

    def transactions(self, size_bytes: int) -> int:
        """PCIe transactions (TLPs) for one DMA of ``size_bytes``."""
        if size_bytes <= 0:
            return 0
        return -(-size_bytes // self.max_payload_bytes)


# ``begin`` receives the DMA's start time and returns its completion
# time; ``finish`` runs at completion.
BeginFn = Callable[[float], float]
FinishFn = Callable[[], None]


class DmaPipeline:
    """Lane-limited, wire-serialized DMA pipeline for one direction."""

    def __init__(
        self,
        sim: Simulator,
        config: PcieConfig,
        lanes: int,
        label: str = "dma",
    ) -> None:
        if lanes <= 0:
            raise ValueError("need at least one lane")
        self.sim = sim
        self.config = config
        self.lanes = lanes
        self.label = label  # direction tag for metrics/trace ("rx"/"tx")
        self._busy = 0
        self._pending: deque[tuple[int, BeginFn, FinishFn]] = deque()
        self._wire_busy_until = 0.0
        self.completed_dmas = 0
        self.completed_bytes = 0
        self.busy_ns = 0.0  # lane-occupancy integral for utilization
        # Fault injector (repro.faults); None in normal runs.
        self.faults = injector_for("pcie")
        self.held_dmas = 0  # DMAs delayed by a link flap
        self.replayed_dmas = 0  # DMAs that ate a NACK/replay penalty
        self.obs = current_registry()
        # Hoisted once: _begin runs per DMA and must not re-dereference
        # obs.tracer each time.
        self._tracer = self.obs.tracer if self.obs is not None else None
        if self.obs is not None:
            scope = self.obs.scope(f"pcie.{label}")
            scope.counter("dmas", lambda: self.completed_dmas)
            scope.counter("bytes", lambda: self.completed_bytes)
            scope.counter("held", lambda: self.held_dmas)
            scope.counter("replayed", lambda: self.replayed_dmas)
            scope.counter("busy_ns", lambda: self.busy_ns)
            scope.gauge("inflight", lambda: self.inflight)
            scope.gauge("queued", lambda: self.queued)

    # ------------------------------------------------------------------
    def submit(self, size_bytes: int, begin: BeginFn, finish: FinishFn) -> None:
        """Queue one DMA; it starts when a lane frees up."""
        if self._busy < self.lanes:
            self._start(size_bytes, begin, finish)
        else:
            self._pending.append((size_bytes, begin, finish))

    def reserve_wire(self, start: float, size_bytes: int) -> float:
        """Serialize ``size_bytes`` on the shared wire from ``start``.

        Returns the time the last byte crosses.  ``begin`` callbacks use
        this so that concurrent lanes cannot exceed the link rate.
        """
        wire_start = max(start, self._wire_busy_until)
        wire_ns = self.config.wire_ns(size_bytes)
        if self.faults is not None:
            # Lane loss: the link retrained at reduced width, so every
            # byte serializes slower while the window is open.
            wire_ns *= self.faults.wire_slowdown()
        wire_done = wire_start + wire_ns
        self._wire_busy_until = wire_done
        return wire_done

    # ------------------------------------------------------------------
    def _start(self, size_bytes: int, begin: BeginFn, finish: FinishFn) -> None:
        self._busy += 1
        if self.faults is not None:
            held_until = self.faults.hold_until()
            if held_until is not None and held_until > self.sim.now:
                # Link flap: the DMA engine cannot issue while the link
                # is down; the lane stays occupied and the transfer
                # begins when the link retrains.
                self.held_dmas += 1
                self.sim.schedule_at(
                    held_until,
                    lambda s=size_bytes, b=begin, f=finish: self._begin(
                        s, b, f
                    ),
                )
                return
        self._begin(size_bytes, begin, finish)

    def _begin(self, size_bytes: int, begin: BeginFn, finish: FinishFn) -> None:
        start = self.sim.now
        completion = begin(start)
        if completion < start:
            raise ValueError("begin() returned a completion in the past")
        if self.faults is not None:
            penalty = self.faults.replay_penalty()
            if penalty > 0.0:
                # A TLP was NACKed; the DMA completes after the replay.
                self.replayed_dmas += 1
                completion += penalty
        self.busy_ns += completion - start
        if self._tracer is not None:
            self._tracer.complete(
                "dma",
                f"pcie.{self.label}",
                start,
                completion - start,
                bytes=size_bytes,
            )
        self.sim.schedule_at(
            completion, lambda s=size_bytes, f=finish: self._complete(s, f)
        )

    def _complete(self, size_bytes: int, finish: FinishFn) -> None:
        self._busy -= 1
        self.completed_dmas += 1
        self.completed_bytes += size_bytes
        finish()
        while self._pending and self._busy < self.lanes:
            next_size, next_begin, next_finish = self._pending.popleft()
            self._start(next_size, next_begin, next_finish)

    @property
    def queued(self) -> int:
        return len(self._pending)

    @property
    def inflight(self) -> int:
        return self._busy

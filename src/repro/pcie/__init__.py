"""PCIe link and DMA pipeline models."""

from .link import DmaPipeline, PcieConfig

__all__ = ["DmaPipeline", "PcieConfig"]

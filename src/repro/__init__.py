"""repro — a simulation-based reproduction of "Fast & Safe IO Memory
Protection" (SOSP 2024).

The package models the complete NIC-to-memory datapath of a modern
server — IOMMU (IO page table, IOTLB, PTcache-L1/L2/L3, invalidation
queue), Linux IOVA allocation (red-black tree + per-CPU caches), a
multi-page-descriptor NIC, the PCIe DMA pipeline, DCTCP transport, and
a per-core CPU model — and implements four memory-protection modes
behind one driver interface: IOMMU-off, Linux strict, Linux deferred,
and F&S (with its three ideas independently toggleable for the paper's
ablation).

Quick start::

    from repro import run_iperf

    linux = run_iperf("strict", flows=5)
    fns = run_iperf("fns", flows=5)
    print(linux.rx_goodput_gbps, "->", fns.rx_goodput_gbps)

See ``examples/`` for richer scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from .apps import (
    run_bidirectional_iperf,
    run_iperf,
    run_netperf_rpc,
    run_nginx,
    run_redis,
    run_spdk,
)
from .host import Host, HostConfig, RemotePeer, Testbed, TestbedResult
from .iommu import DmaFault, Iommu, IommuConfig
from .protection import (
    DeferredDriver,
    PassthroughDriver,
    ProtectionDriver,
    StrictFamilyDriver,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "HostConfig",
    "Testbed",
    "TestbedResult",
    "Host",
    "RemotePeer",
    "Iommu",
    "IommuConfig",
    "DmaFault",
    "ProtectionDriver",
    "PassthroughDriver",
    "StrictFamilyDriver",
    "DeferredDriver",
    "run_iperf",
    "run_bidirectional_iperf",
    "run_netperf_rpc",
    "run_redis",
    "run_nginx",
    "run_spdk",
]

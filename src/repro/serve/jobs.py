"""The serve-side job queue: FIFO execution, in-flight dedup by config.

A :class:`ReproduceRequest` is the canonicalized description of one
reproduce run (figures, scale, seed, parallelism).  Its
:meth:`~ReproduceRequest.config_key` hashes exactly the fields that
determine the *output* — parallelism knobs are excluded, because
``--jobs`` is guaranteed byte-invisible in the report — so two users
asking for the same report at different worker counts still share one
run.

Dedup contract: while a job for a key is queued or running, submitting
the same key *attaches* to it (no new work); once it has retired, a
new submission creates a fresh job — which the result cache then makes
nearly free.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
from pathlib import Path
from typing import Callable, Optional

from ..experiments.settings import FULL, QUICK, RunScale

__all__ = ["ReproduceRequest", "Job", "JobQueue"]

# An executor runs one request into an output directory and returns the
# reproduce exit code (0 ok, 1 claims violated, 2 bad request).
Executor = Callable[["ReproduceRequest", Path], int]


class ReproduceRequest:
    """One canonicalized reproduce request."""

    def __init__(
        self,
        figures: Optional[tuple[str, ...]] = None,
        full: bool = False,
        seed: int = 1,
        jobs: Optional[int] = None,
        chunk: Optional[int] = None,
    ) -> None:
        self.figures = tuple(figures) if figures else None
        self.full = bool(full)
        self.seed = int(seed)
        self.jobs = jobs
        self.chunk = chunk

    @classmethod
    def from_json(cls, doc: object) -> "ReproduceRequest":
        """Build from a request body; raises ``ValueError`` on junk."""
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        figures = doc.get("figures")
        if figures is not None:
            if not isinstance(figures, list) or not all(
                isinstance(f, str) and f for f in figures
            ):
                raise ValueError("figures must be a list of figure keys")
            figures = tuple(figures)
        seed = doc.get("seed", 1)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError("seed must be an integer")
        jobs = doc.get("jobs")
        if jobs is not None and (
            not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0
        ):
            raise ValueError("jobs must be a non-negative integer")
        chunk = doc.get("chunk")
        if chunk is not None and (
            not isinstance(chunk, int) or isinstance(chunk, bool) or chunk < 1
        ):
            raise ValueError("chunk must be a positive integer")
        return cls(
            figures=figures,
            full=bool(doc.get("full", False)),
            seed=seed,
            jobs=jobs,
            chunk=chunk,
        )

    def scale(self) -> RunScale:
        return FULL if self.full else QUICK

    def config_key(self) -> str:
        """Hash of the output-determining fields (not parallelism)."""
        material = {
            "figures": list(self.figures) if self.figures else None,
            "scale": self.scale().name,
            "seed": self.seed,
        }
        return hashlib.sha256(
            json.dumps(material, sort_keys=True).encode()
        ).hexdigest()[:16]

    def describe(self) -> dict:
        return {
            "figures": list(self.figures) if self.figures else None,
            "full": self.full,
            "seed": self.seed,
            "jobs": self.jobs,
            "chunk": self.chunk,
        }


class Job:
    """One queued/running/retired reproduce run."""

    def __init__(self, job_id: str, request: ReproduceRequest, outdir: Path):
        self.id = job_id
        self.request = request
        self.key = request.config_key()
        self.outdir = outdir
        self.status = "queued"  # queued -> running -> done | failed
        self.exit_code: Optional[int] = None
        self.error: Optional[str] = None
        # How many extra requests attached to this in-flight job (the
        # dedup win, surfaced for observability and the tests).
        self.attachments = 0
        self._done = threading.Event()

    @property
    def report_json(self) -> Path:
        return self.outdir / "report.json"

    @property
    def report_md(self) -> Path:
        return self.outdir / "REPORT.md"

    def finished(self) -> bool:
        return self.status in ("done", "failed")

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def describe(self) -> dict:
        return {
            "id": self.id,
            "config_key": self.key,
            "status": self.status,
            "exit_code": self.exit_code,
            "error": self.error,
            "attachments": self.attachments,
            "request": self.request.describe(),
        }


class JobQueue:
    """FIFO job execution with in-flight dedup by config key."""

    def __init__(self, workdir: Path, executor: Executor) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._executor = executor
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # id -> job (all, forever)
        self._inflight: dict[str, Job] = {}  # config key -> live job
        self._serial = 0
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._worker = threading.Thread(
            target=self._drain, name="repro-serve-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission (the dedup point)
    # ------------------------------------------------------------------
    def submit(self, request: ReproduceRequest) -> tuple[Job, bool]:
        """Enqueue ``request``; returns ``(job, attached)``.

        ``attached`` is True when an identical config was already
        queued or running and this request joined it instead of
        creating new work.
        """
        key = request.config_key()
        with self._lock:
            live = self._inflight.get(key)
            if live is not None and not live.finished():
                live.attachments += 1
                return (live, True)
            self._serial += 1
            job_id = f"job-{self._serial:06d}"
            job = Job(job_id, request, self.workdir / job_id)
            self._jobs[job_id] = job
            self._inflight[key] = job
        self._queue.put(job)
        return (job, False)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run(job)

    def _run(self, job: Job) -> None:
        job.status = "running"
        try:
            job.outdir.mkdir(parents=True, exist_ok=True)
            job.exit_code = self._executor(job.request, job.outdir)
            job.status = "done"
        except Exception as exc:  # the queue must survive any job
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
            job._done.set()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the worker after the current job (tests/clean exit)."""
        self._queue.put(None)
        self._worker.join(timeout)

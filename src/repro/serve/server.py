"""The HTTP face of ``repro serve`` (stdlib ``ThreadingHTTPServer``).

Endpoints::

    GET  /healthz                     liveness
    GET  /api/cache/stats             store contents + this-run counters
    GET  /api/jobs                    every job this daemon has seen
    GET  /api/jobs/<id>               one job's status document
    GET  /api/jobs/<id>/report.json   the gated report (202 until done)
    GET  /api/jobs/<id>/report.md     REPORT.md (202 until done)
    POST /api/reproduce               submit a run; 202 + job document

A POST whose config hash matches a queued/running job *attaches* to it
(``"attached": true`` in the response) — the dedup that lets N
identical concurrent requests cost one underlying run.  Completed
results are plain files in the job's directory; re-requesting a
retired config starts a fresh job, which the result cache then serves
almost entirely from the store.
"""

from __future__ import annotations

import json
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from ..cache.store import ResultCache
from .jobs import Executor, JobQueue, ReproduceRequest

__all__ = ["ReproServer"]


class ReproServer:
    """Owns the cache, the job queue and the HTTP listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        workdir: Optional[str] = None,
        jobs: Optional[int] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.default_jobs = jobs
        if workdir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            workdir = self._tempdir.name
        else:
            self._tempdir = None
        self.queue = JobQueue(
            Path(workdir), executor or self._run_reproduce
        )
        self._http = ThreadingHTTPServer(
            (host, port), _handler_for(self)
        )
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # The default executor: a real reproduce run through the cache
    # ------------------------------------------------------------------
    def _run_reproduce(self, request: ReproduceRequest, outdir: Path) -> int:
        from ..obs.expect.reproduce import run_reproduce

        log_path = outdir / "log.txt"
        with open(log_path, "a") as log:
            return run_reproduce(
                list(request.figures) if request.figures else None,
                scale=request.scale(),
                seed=request.seed,
                jobs=request.jobs or self.default_jobs,
                chunk=request.chunk,
                report_path=str(outdir / "REPORT.md"),
                json_path=str(outdir / "report.json"),
                echo=lambda line: print(line, file=log),
                cache=self.cache,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return (str(host), int(port))

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI daemon path)."""
        self._http.serve_forever()

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.queue.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()


def _handler_for(server: "ReproServer"):
    """A request-handler class bound to one :class:`ReproServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Quiet by default: the daemon's stdout is for operators, and
        # tests hammer the endpoints.
        def log_message(self, fmt: str, *args) -> None:
            pass

        # --------------------------------------------------------------
        # Plumbing
        # --------------------------------------------------------------
        def _send_json(self, status: int, doc: dict) -> None:
            blob = (json.dumps(doc, indent=2) + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        def _send_file(self, path: Path, content_type: str) -> None:
            try:
                blob = path.read_bytes()
            except OSError:
                self._send_json(404, {"error": f"{path.name} not found"})
                return
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)

        # --------------------------------------------------------------
        # GET
        # --------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok"})
                return
            if parts == ["api", "cache", "stats"]:
                self._send_json(
                    200,
                    {
                        "disk": server.cache.disk_stats(),
                        "run": server.cache.stats.as_dict(),
                    },
                )
                return
            if parts == ["api", "jobs"]:
                self._send_json(
                    200,
                    {"jobs": [j.describe() for j in server.queue.jobs()]},
                )
                return
            if len(parts) >= 3 and parts[:2] == ["api", "jobs"]:
                job = server.queue.get(parts[2])
                if job is None:
                    self._send_json(404, {"error": "no such job"})
                    return
                if len(parts) == 3:
                    self._send_json(200, job.describe())
                    return
                if not job.finished():
                    self._send_json(202, job.describe())
                    return
                if parts[3] == "report.json":
                    self._send_file(job.report_json, "application/json")
                    return
                if parts[3] == "report.md":
                    self._send_file(job.report_md, "text/markdown")
                    return
            self._send_json(404, {"error": f"no route for {self.path}"})

        # --------------------------------------------------------------
        # POST
        # --------------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts != ["api", "reproduce"]:
                self._send_json(404, {"error": f"no route for {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b"{}"
                request = ReproduceRequest.from_json(json.loads(body))
            except (ValueError, KeyError) as exc:
                self._send_json(400, {"error": str(exc)})
                return
            job, attached = server.queue.submit(request)
            doc = job.describe()
            doc["attached"] = attached
            self._send_json(202, doc)

    return Handler

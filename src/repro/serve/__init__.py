"""``repro serve``: a long-running reproduce service.

Turns the per-invocation CLI into a daemon: reproduce/sweep requests
arrive over HTTP, land in a job queue, and identical in-flight work is
deduplicated by config hash — a second request for a running job
attaches to the first instead of re-running it.  Results (REPORT.md /
report.json) are served once the job retires.  Together with the
content-addressed result cache (:mod:`repro.cache`) this is the path
from "one CLI run per user" to "one service absorbing many report
requests": concurrent duplicates collapse in the queue, repeated
configs collapse in the store.

Stdlib only (``http.server``), like the rest of the repository.
"""

from .jobs import Job, JobQueue, ReproduceRequest
from .server import ReproServer

__all__ = ["Job", "JobQueue", "ReproduceRequest", "ReproServer"]
